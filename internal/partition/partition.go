// Package partition assigns stream edges to worker partitions by vertex
// ownership and supplies the correction factors that keep summed
// per-partition estimates unbiased.
//
// Routing: every vertex has exactly one owner, chosen by a fixed (seedless)
// hash of its id, and an edge {u,v} is delivered to the owner of u and the
// owner of v — one copy when both endpoints share an owner, two otherwise.
// The hash must be identical on the coordinator and every worker, which is
// why it takes no seed.
//
// Counting: a pattern instance J is visible at partition k iff every edge of
// J has at least one k-owned endpoint, so an instance may be visible at
// zero, one, or several partitions. Each partition scales the contribution
// of an event by EventWeight — the fraction of the event edge's endpoints it
// owns, 1/2 or 1 — so an instance completed at several partitions splits its
// attribution instead of double counting. Summing the per-partition
// estimates (combine.Sum) then yields an estimator whose expectation, over
// the uniform ownership of the instance's vertex ids, is Beta(kind, n)
// times the true count; the coordinator divides the sum by Beta to undo it.
//
// Beta is exact under the model that each vertex's owner is an independent
// uniform draw over the n partitions — the idealization of a well-mixing
// hash — and is computed from the instance's last-arriving edge: only the
// owners of that edge's endpoints can complete J, each needs the rest of J
// visible, and each earns its owned-endpoint fraction of the edge. Both
// formation and destruction of an instance use the same visibility set
// (ownership is static), so deletion contributions telescope and the
// correction is unaffected by deletions.
package partition

import (
	"repro/internal/graph"
	"repro/internal/pattern"
)

// mix is the splitmix64 finalizer — a fixed, seedless avalanche over the
// vertex id. Fixed on purpose: coordinator and workers must agree on
// ownership without coordination.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Owner returns the partition index in [0,n) that owns vertex v. With n <= 1
// there is a single partition owning everything.
func Owner(v graph.VertexID, n int) int {
	if n <= 1 {
		return 0
	}
	return int(mix(uint64(v)) % uint64(n))
}

// Owners returns the owners of the edge's two endpoints, in U, V order. The
// two may be equal, in which case the edge is delivered once.
func Owners(e graph.Edge, n int) (int, int) {
	return Owner(e.U, n), Owner(e.V, n)
}

// EventWeight returns the contribution scale partition self applies to each
// event in an n-way deployment: the fraction of the edge's endpoints it
// owns — 1 when it owns both, 1/2 when it owns one, 0 for a misrouted edge
// it owns neither end of.
func EventWeight(self, n int) func(graph.Edge) float64 {
	return func(e graph.Edge) float64 {
		w := 0.0
		if Owner(e.U, n) == self {
			w += 0.5
		}
		if Owner(e.V, n) == self {
			w += 0.5
		}
		return w
	}
}

// Beta is the expected fraction of an instance's unit count captured by the
// summed n-partition estimator, under independent uniform vertex ownership
// with p = 1/n. The coordinator divides the summed estimate by Beta(kind, n).
// Closed forms (derived from the last-arriving edge of each pattern; the
// expectation is the same whichever edge arrives last):
//
//	wedge:     1/2 + p - p^2/2
//	triangle:  2p - p^2
//	4-cycle:   p + p^2 - p^3
//	4-clique:  3p^2 - 2p^3
//	5-clique:  4p^3 - 3p^4
//
// All equal 1 at n = 1.
func Beta(k pattern.Kind, n int) float64 {
	if n <= 1 {
		return 1
	}
	p := 1 / float64(n)
	switch k {
	case pattern.Wedge:
		return 0.5 + p - p*p/2
	case pattern.Triangle:
		return 2*p - p*p
	case pattern.FourCycle:
		return p + p*p - p*p*p
	case pattern.FourClique:
		return 3*p*p - 2*p*p*p
	case pattern.FiveClique:
		return 4*p*p*p - 3*p*p*p*p
	default:
		return 1
	}
}
