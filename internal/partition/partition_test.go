package partition

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// patternEdges is the canonical vertex/edge template of each pattern,
// independent of the production enumeration code: the Monte-Carlo check
// below recomputes Beta from first principles against these.
func patternEdges(k pattern.Kind) (vertices int, edges [][2]int) {
	clique := func(n int) [][2]int {
		var es [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				es = append(es, [2]int{i, j})
			}
		}
		return es
	}
	switch k {
	case pattern.Wedge:
		return 3, [][2]int{{0, 1}, {1, 2}}
	case pattern.Triangle:
		return 3, clique(3)
	case pattern.FourCycle:
		return 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	case pattern.FourClique:
		return 4, clique(4)
	case pattern.FiveClique:
		return 5, clique(5)
	}
	panic("unknown kind")
}

// phi is the total weight the summed estimator credits one instance under a
// concrete ownership assignment: each owner of the last-arriving edge's
// endpoints that can see the whole instance earns its owned fraction of
// that edge.
func phi(owner []int, edges [][2]int, last int) float64 {
	a, b := owner[edges[last][0]], owner[edges[last][1]]
	ks := []int{a}
	if b != a {
		ks = append(ks, b)
	}
	total := 0.0
	for _, k := range ks {
		visible := true
		for _, e := range edges {
			if owner[e[0]] != k && owner[e[1]] != k {
				visible = false
				break
			}
		}
		if !visible {
			continue
		}
		w := 0.0
		if a == k {
			w += 0.5
		}
		if b == k {
			w += 0.5
		}
		total += w
	}
	return total
}

// TestBetaMatchesMonteCarlo recomputes Beta by simulation, separately for
// every possible last-arriving edge: the closed forms must match each one,
// which also validates the claim that the expectation does not depend on
// which instance edge arrives last (and hence that deletions, which may
// attribute the instance to a different edge, telescope in expectation).
func TestBetaMatchesMonteCarlo(t *testing.T) {
	const trials = 200_000
	for _, n := range []int{2, 3, 5} {
		for _, k := range pattern.Kinds() {
			nv, edges := patternEdges(k)
			want := Beta(k, n)
			for last := range edges {
				rng := rand.New(rand.NewSource(int64(17*n + 1000*last)))
				owner := make([]int, nv)
				sum := 0.0
				for i := 0; i < trials; i++ {
					for v := range owner {
						owner[v] = rng.Intn(n)
					}
					sum += phi(owner, edges, last)
				}
				got := sum / trials
				if math.Abs(got-want) > 0.01 {
					t.Errorf("%v n=%d last-edge=%d: Beta closed form %.5f, Monte-Carlo %.5f", k, n, last, want, got)
				}
			}
		}
	}
}

func TestBetaIdentityAtOnePartition(t *testing.T) {
	for _, k := range pattern.Kinds() {
		for _, n := range []int{0, 1} {
			if got := Beta(k, n); got != 1 {
				t.Errorf("Beta(%v, %d) = %v, want 1", k, n, got)
			}
		}
	}
}

func TestOwnerRangeAndDeterminism(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		seen := make([]int, n)
		for v := graph.VertexID(0); v < 10_000; v++ {
			o := Owner(v, n)
			if o < 0 || o >= n {
				t.Fatalf("Owner(%d, %d) = %d out of range", v, n, o)
			}
			if o != Owner(v, n) {
				t.Fatalf("Owner(%d, %d) not deterministic", v, n)
			}
			seen[o]++
		}
		// A well-mixing hash should not starve any partition.
		for k, c := range seen {
			if c < 10_000/(4*n) {
				t.Errorf("n=%d partition %d owns only %d of 10000 vertices", n, k, c)
			}
		}
	}
}

// TestEventWeightsSumToOne: across the fleet, each edge's weights must total
// exactly 1 — the invariant that stops split instances from double counting.
func TestEventWeightsSumToOne(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		fns := make([]func(graph.Edge) float64, n)
		for k := range fns {
			fns[k] = EventWeight(k, n)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 1000; i++ {
			e := graph.Edge{U: graph.VertexID(rng.Uint32()), V: graph.VertexID(rng.Uint32())}
			total := 0.0
			for k := range fns {
				w := fns[k](e)
				if w != 0 && w != 0.5 && w != 1 {
					t.Fatalf("n=%d weight %v not in {0, 1/2, 1}", n, w)
				}
				ou, ov := Owners(e, n)
				if w > 0 && ou != k && ov != k {
					t.Fatalf("n=%d partition %d weighs edge it does not own", n, k)
				}
				total += w
			}
			if total != 1 {
				t.Fatalf("n=%d edge %v: fleet weights sum to %v, want 1", n, e, total)
			}
		}
	}
}
