// Package cluster distributes the shard ensemble across worker nodes: a
// coordinator that broadcasts event batches to N remote wsdserve workers —
// each itself a sharded counter — and serves scatter/gather reads by
// collecting the workers' estimates and combining them with the same
// unit-tested math (internal/combine) the in-process ensemble uses.
//
// The statistical argument is the one internal/shard already relies on, and
// it is indifferent to process boundaries: every worker ingests the complete
// stream with independently seeded randomness, so each worker estimate is an
// independent unbiased estimator of the same quantity. The mean of K worker
// estimates preserves unbiasedness and divides the variance by K; the
// median-of-means keeps sub-Gaussian concentration under the heavy right
// tail of inverse-probability estimates. A coordinator over K single-shard
// workers is therefore statistically interchangeable with one K-shard
// process — the cluster layer buys horizontal memory and CPU, not a
// different estimator.
//
// Consistency model. A worker is *consistent* while it has applied every
// broadcast since the cluster's start (or its last successful cluster
// restore). A worker that misses a broadcast — network error, crash, 5xx —
// is marked inconsistent and excluded from ingest and reads: its counter no
// longer summarizes the full stream, and an estimator over a prefix of the
// stream is not an unbiased estimator of the present graph. Inconsistent
// workers rejoin only through Restore, which resets every worker to one
// cluster-wide snapshot. Reads additionally tolerate transient
// unreachability: a consistent worker that fails one gather is skipped for
// that read (and stays consistent — its state is intact). Every read reports
// how many workers answered and whether the configured quorum was met, so a
// degraded cluster serves, visibly, from the survivors.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	wsd "repro"

	"repro/internal/combine"
	"repro/internal/stream"
)

// Config describes the worker fleet a coordinator fronts.
type Config struct {
	// Workers are the worker base URLs ("http://host:port"; a bare
	// "host:port" gets the http scheme). At least one is required.
	Workers []string
	// Combiner folds the worker estimates (default combine.Mean; use
	// combine.MedianOfMeans for tail robustness).
	Combiner combine.Func
	// Quorum is the minimum number of workers that must answer for a read to
	// be served; values < 1 default to a majority (workers/2 + 1). Ingest
	// applies the same bar: a broadcast that lands on fewer than Quorum
	// workers is reported as an error (the events that did land stay
	// applied — single-pass streams cannot be unapplied).
	Quorum int
	// Timeout bounds each worker request (default 10s).
	Timeout time.Duration
	// Client overrides the HTTP client used for worker requests. When nil, a
	// client with Timeout applied is built; when set, Timeout is ignored and
	// the supplied client's own limits govern.
	Client *http.Client
}

// ErrBadStream wraps a body every worker rejected as unparsable: a client
// error, not a cluster failure. No worker applied any of it (workers
// validate a whole body before applying), so the cluster stays consistent.
var ErrBadStream = errors.New("cluster: stream body rejected by workers")

// ErrNoQuorum is returned when fewer consistent workers than the configured
// quorum are available to serve a request.
var ErrNoQuorum = errors.New("cluster: below worker quorum")

// ErrPartialRestore wraps a restore fan-out that failed after validation:
// some workers swapped to the snapshot state while others kept theirs. The
// failed workers are marked inconsistent; retry the restore to heal.
var ErrPartialRestore = errors.New("cluster: restore incomplete")

// workerRef is one worker endpoint plus its consistency flag.
type workerRef struct {
	url string
	// inconsistent is set when the worker misses a broadcast; only a
	// successful cluster Restore clears it.
	inconsistent atomic.Bool
}

// Coordinator fans ingested batches out to every worker and gathers their
// estimates into one combined read. Construct with New; the zero value is
// not usable. Safe for concurrent use.
type Coordinator struct {
	workers []*workerRef
	comb    combine.Func
	quorum  int
	client  *http.Client

	// mu guards the ingest/read side against Restore the same way
	// serve.Server does: requests hold the read lock, Restore the write
	// lock, so a restore never interleaves with a broadcast.
	mu sync.RWMutex

	// bcastMu serializes broadcasts, the cross-process analogue of the shard
	// ensemble holding its lock across the per-shard sends: without it, two
	// concurrent ingests could land on different workers in different
	// orders, and an insert/delete pair applied in opposite orders leaves
	// workers summarizing different graphs while still marked consistent.
	// Snapshot also takes it, so a cluster blob can never interleave with a
	// broadcast and capture workers at different stream positions.
	bcastMu sync.Mutex

	// encMu serializes access to the reused binary-encode buffer on the
	// programmatic submit path.
	encMu  sync.Mutex
	encBuf bytes.Buffer
}

// New validates the worker list and returns a coordinator. The workers are
// not contacted: a coordinator can start before its fleet and report the gap
// through Health.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	seen := make(map[string]bool, len(cfg.Workers))
	refs := make([]*workerRef, 0, len(cfg.Workers))
	for _, w := range cfg.Workers {
		u := NormalizeWorkerURL(w)
		if u == "" {
			return nil, fmt.Errorf("cluster: empty worker address in %v", cfg.Workers)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: worker %s listed twice", u)
		}
		seen[u] = true
		refs = append(refs, &workerRef{url: u})
	}
	comb := cfg.Combiner
	if comb == nil {
		comb = combine.Mean
	}
	quorum := cfg.Quorum
	if quorum < 1 {
		quorum = len(refs)/2 + 1
	}
	if quorum > len(refs) {
		return nil, fmt.Errorf("cluster: quorum %d exceeds the %d configured workers", quorum, len(refs))
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	return &Coordinator{workers: refs, comb: comb, quorum: quorum, client: client}, nil
}

// NormalizeWorkerURL canonicalizes a worker address: trims whitespace and
// trailing slashes (a leftover slash would turn every request path into
// //ingest, which the worker mux redirects and breaks), and defaults the
// scheme to http. Empty input returns "".
func NormalizeWorkerURL(s string) string {
	u := strings.TrimSpace(s)
	u = strings.TrimRight(u, "/")
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// Workers returns the configured fleet size.
func (c *Coordinator) Workers() int { return len(c.workers) }

// Quorum returns the minimum worker count required to serve.
func (c *Coordinator) Quorum() int { return c.quorum }

// consistent returns the workers currently eligible for broadcast and
// gather.
func (c *Coordinator) consistent() []*workerRef {
	out := make([]*workerRef, 0, len(c.workers))
	for _, w := range c.workers {
		if !w.inconsistent.Load() {
			out = append(out, w)
		}
	}
	return out
}

// fanout runs fn once per worker concurrently and returns the per-worker
// errors (nil entries for successes), indexed like workers.
func fanout(workers []*workerRef, fn func(i int, w *workerRef) error) []error {
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *workerRef) {
			defer wg.Done()
			errs[i] = fn(i, w)
		}(i, w)
	}
	wg.Wait()
	return errs
}

// statusError is a non-2xx worker reply; Client reports whether it was a
// 4xx, i.e. the worker validated and rejected the request without applying
// any of it.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("status %d: %s", e.code, strings.TrimSpace(e.body))
}

func (e *statusError) client() bool { return e.code >= 400 && e.code < 500 }

// post sends body to worker path and decodes a JSON reply into out (when
// non-nil).
func (c *Coordinator) post(w *workerRef, path string, body []byte, out any) error {
	resp, err := c.client.Post(w.url+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &statusError{code: resp.StatusCode, body: string(raw)}
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("bad reply: %w", err)
		}
	}
	return nil
}

// get fetches worker path and returns the raw body.
func (c *Coordinator) get(w *workerRef, path string) ([]byte, error) {
	resp, err := c.client.Get(w.url + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &statusError{code: resp.StatusCode, body: string(raw)}
	}
	return raw, nil
}

// IngestResult reports how a broadcast landed.
type IngestResult struct {
	// Accepted is the event count each applying worker reported.
	Accepted int `json:"accepted"`
	// Applied is how many workers applied the batch.
	Applied int `json:"applied"`
	// Workers is the configured fleet size.
	Workers int `json:"workers"`
}

// IngestBytes broadcasts one request body — text or binary stream format, as
// accepted by the workers' /ingest — to every consistent worker. The same
// bytes go to every worker (no re-encode, no per-worker copy). Workers that
// fail to apply are marked inconsistent and excluded until the next Restore.
//
// If every worker rejects the body as unparsable (4xx), no worker applied
// any of it and the error wraps ErrBadStream: the cluster is intact and the
// client should fix its stream. If fewer than the quorum applied, the error
// wraps ErrNoQuorum.
func (c *Coordinator) IngestBytes(raw []byte) (IngestResult, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.broadcast(raw)
}

// broadcast is IngestBytes under a held read lock, shared with the
// programmatic submit path. It owns bcastMu for the whole fan-out, so every
// worker applies batches in one global order and snapshots never tear.
func (c *Coordinator) broadcast(raw []byte) (IngestResult, error) {
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	res := IngestResult{Workers: len(c.workers)}
	live := c.consistent()
	if len(live) < c.quorum {
		return res, fmt.Errorf("%w: %d consistent of %d (need %d)", ErrNoQuorum, len(live), len(c.workers), c.quorum)
	}
	accepted := make([]int, len(live))
	errs := fanout(live, func(i int, w *workerRef) error {
		var reply struct {
			Accepted int `json:"accepted"`
		}
		if err := c.post(w, "/ingest", raw, &reply); err != nil {
			return err
		}
		accepted[i] = reply.Accepted
		return nil
	})
	var (
		firstErr error
		clientRejects,
		applied int
	)
	for i, err := range errs {
		if err == nil {
			applied++
			continue
		}
		var se *statusError
		if errors.As(err, &se) && se.client() {
			clientRejects++
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("worker %s: %w", live[i].url, err)
		}
	}
	if applied == 0 && clientRejects > 0 {
		// Nothing was applied anywhere and at least one worker validated
		// the body whole and rejected it: the body is bad, not the fleet.
		// Workers that did not respond cannot have applied it either — the
		// same bytes fail the same validation (the fleet is uniform) — so
		// nobody is marked inconsistent and the client gets its error back.
		return res, fmt.Errorf("%w: %v", ErrBadStream, firstErr)
	}
	for i, err := range errs {
		if err != nil {
			// Some worker applied this batch (or the outcome is unknowable:
			// every request failed in transit and a lost response may have
			// followed an apply), so an errored worker's state no longer
			// provably covers the stream.
			live[i].inconsistent.Store(true)
		} else if accepted[i] > res.Accepted {
			res.Accepted = accepted[i]
		}
	}
	res.Applied = applied
	if applied < c.quorum {
		return res, fmt.Errorf("%w: %d of %d workers applied (need %d): %v", ErrNoQuorum, applied, len(c.workers), c.quorum, firstErr)
	}
	return res, nil
}

// SubmitBatch encodes one event batch in the binary wire format and
// broadcasts it, the programmatic equivalent of POSTing to every worker. The
// encode buffer is reused across calls, so steady-state submission allocates
// only what the HTTP client needs.
func (c *Coordinator) SubmitBatch(evs []stream.Event) error {
	if len(evs) == 0 {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.encMu.Lock()
	defer c.encMu.Unlock()
	c.encBuf.Reset()
	bw, err := stream.NewBinaryWriter(&c.encBuf)
	if err != nil {
		return err
	}
	if err := bw.WriteBatch(evs); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	_, err = c.broadcast(c.encBuf.Bytes())
	return err
}

// SubmitPooled broadcasts a pooled batch (the PR 3 zero-copy ingest
// currency) and releases it: the batch's events are encoded once into the
// coordinator's reused wire buffer and the same bytes go to every worker.
func (c *Coordinator) SubmitPooled(b *stream.Batch) error {
	err := c.SubmitBatch(b.Events)
	b.Release()
	return err
}

// Estimate is a combined scatter/gather read over the worker fleet.
type Estimate struct {
	// Estimate is the combined primary-pattern estimate.
	Estimate float64 `json:"estimate"`
	// Estimates maps every served pattern to its combined estimate.
	Estimates map[string]float64 `json:"estimates"`
	// Patterns is the served pattern set in estimator order.
	Patterns []string `json:"patterns"`
	// WorkerEstimates is each gathered worker's primary estimate, in fleet
	// order of the workers that answered — the spread is an empirical
	// variance check, exactly like the single-process /estimate "shards"
	// field.
	WorkerEstimates []float64 `json:"worker_estimates"`
	// Processed is the minimum processed-event count across the gathered
	// workers.
	Processed int64 `json:"processed"`
	// Workers is the configured fleet size; Gathered is how many answered
	// this read.
	Workers  int `json:"workers"`
	Gathered int `json:"gathered"`
	// Quorum is the configured read quorum; Degraded is true when any
	// configured worker did not contribute.
	Quorum   int  `json:"quorum"`
	Degraded bool `json:"degraded"`
}

// workerEstimate is the slice of a worker's /estimate reply the gather
// needs.
type workerEstimate struct {
	Estimate  float64            `json:"estimate"`
	Estimates map[string]float64 `json:"estimates"`
	Patterns  []string           `json:"patterns"`
	Processed int64              `json:"processed"`
}

// Estimate gathers every consistent worker's estimates and combines them per
// pattern with the coordinator's combiner. Consistent workers that fail the
// gather are skipped (and stay consistent — reads do not mutate state); the
// reply reports how many answered. Fewer answers than the quorum is an
// ErrNoQuorum error. Workers serving different pattern sets (or different
// estimate-vector widths) are a deployment error and fail the read.
func (c *Coordinator) Estimate() (*Estimate, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	live := c.consistent()
	replies := make([]*workerEstimate, len(live))
	fanout(live, func(i int, w *workerRef) error {
		raw, err := c.get(w, "/estimate")
		if err != nil {
			return err
		}
		var we workerEstimate
		if err := json.Unmarshal(raw, &we); err != nil {
			return err
		}
		replies[i] = &we
		return nil
	})
	var gathered []*workerEstimate
	for _, r := range replies {
		if r != nil {
			gathered = append(gathered, r)
		}
	}
	out := &Estimate{
		Workers:  len(c.workers),
		Gathered: len(gathered),
		Quorum:   c.quorum,
		Degraded: len(gathered) < len(c.workers),
	}
	if len(gathered) < c.quorum {
		return out, fmt.Errorf("%w: gathered %d of %d workers (need %d)", ErrNoQuorum, len(gathered), len(c.workers), c.quorum)
	}
	patterns := gathered[0].Patterns
	if len(patterns) == 0 {
		// A reply with no pattern list would combine into a width-0 vector;
		// the endpoint is answering JSON but is not a (current) wsdserve
		// worker — a deployment error, reported instead of served.
		return out, fmt.Errorf("cluster: worker reply carries no pattern estimates; is every -workers entry a wsdserve worker?")
	}
	vectors := make([][]float64, len(gathered))
	out.Processed = gathered[0].Processed
	for i, g := range gathered {
		if !slices.Equal(g.Patterns, patterns) {
			return out, fmt.Errorf("cluster: workers serve different pattern sets (%v vs %v); the fleet must be configured uniformly", patterns, g.Patterns)
		}
		vec := make([]float64, 0, len(patterns))
		for _, p := range patterns {
			v, ok := g.Estimates[p]
			if !ok {
				return out, fmt.Errorf("cluster: worker reply missing estimate for pattern %s", p)
			}
			vec = append(vec, v)
		}
		vectors[i] = vec
		out.WorkerEstimates = append(out.WorkerEstimates, g.Estimate)
		if g.Processed < out.Processed {
			out.Processed = g.Processed
		}
	}
	combined, err := combine.Vectors(vectors, c.comb)
	if err != nil {
		return out, fmt.Errorf("cluster: %w", err)
	}
	out.Patterns = patterns
	out.Estimate = combined[0]
	out.Estimates = make(map[string]float64, len(patterns))
	for i, p := range patterns {
		out.Estimates[p] = combined[i]
	}
	return out, nil
}

// Snapshot is the serialized state of the whole cluster: one worker ensemble
// snapshot per worker, in fleet order. ClusterVersion guards the format; the
// field name is distinct from the per-process snapshots' "version" so the
// facade and the workers can recognize (and refuse) a cluster blob handed to
// a single-process restore.
type Snapshot struct {
	ClusterVersion int               `json:"cluster_version"`
	Workers        []json.RawMessage `json:"workers"`
}

// snapshotVersion guards the cluster snapshot wire format.
const snapshotVersion = 1

// Snapshot fans GET /snapshot out to the whole fleet and returns one
// versioned cluster blob. Every configured worker must contribute: a
// snapshot missing a worker could not restore the full cluster, so a
// degraded fleet cannot be checkpointed (restore it first). Each worker blob
// is validated (reusing the facade's snapshot inspection, core
// validation included) and the fleet must be uniform — same pattern set and
// shard shape on every worker.
func (c *Coordinator) Snapshot() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	// Excluding broadcasts while the snapshot fans out is what makes the
	// blob a single stream position: every completed broadcast is on every
	// worker, and none is mid-flight on some workers only. Reads stay
	// concurrent (they take neither lock exclusively).
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	if live := c.consistent(); len(live) < len(c.workers) {
		return nil, fmt.Errorf("cluster: %d of %d workers are inconsistent; a cluster snapshot needs the whole fleet (restore it first)", len(c.workers)-len(live), len(c.workers))
	}
	snap := Snapshot{ClusterVersion: snapshotVersion, Workers: make([]json.RawMessage, len(c.workers))}
	errs := fanout(c.workers, func(i int, w *workerRef) error {
		raw, err := c.get(w, "/snapshot")
		if err != nil {
			return err
		}
		snap.Workers[i] = raw
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: snapshot worker %s: %w", c.workers[i].url, err)
		}
	}
	if _, err := validateWorkerBlobs(snap.Workers); err != nil {
		return nil, err
	}
	return json.Marshal(snap)
}

// validateWorkerBlobs inspects every worker ensemble blob (which runs the
// core snapshot validation on each shard) and checks fleet uniformity,
// returning the per-worker infos.
func validateWorkerBlobs(blobs []json.RawMessage) ([]wsd.ShardedSnapshotInfo, error) {
	infos := make([]wsd.ShardedSnapshotInfo, len(blobs))
	for i, raw := range blobs {
		info, err := wsd.InspectShardedSnapshot(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d snapshot: %w", i, err)
		}
		infos[i] = info
		if i == 0 {
			continue
		}
		if info.Pattern != infos[0].Pattern || !slices.Equal(info.Patterns, infos[0].Patterns) {
			return nil, fmt.Errorf("cluster: worker %d counts a different pattern set than worker 0; the fleet must be uniform", i)
		}
		if info.Shards != infos[0].Shards {
			return nil, fmt.Errorf("cluster: worker %d holds %d shards, worker 0 holds %d; the fleet must be uniform", i, info.Shards, infos[0].Shards)
		}
	}
	return infos, nil
}

// DecodeSnapshot parses and validates a cluster Snapshot blob — version,
// per-worker ensemble decode (core validation included), and fleet
// uniformity — without contacting any worker.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("cluster: decode snapshot: %w", err)
	}
	if snap.ClusterVersion != snapshotVersion {
		// The mirror image of the facade's cluster-blob refusal: a
		// single-process ensemble blob has no cluster_version, so point the
		// operator at the right endpoint instead of reporting "version 0".
		var ensembleProbe struct {
			Version int               `json:"version"`
			Shards  []json.RawMessage `json:"shards"`
		}
		if snap.ClusterVersion == 0 && json.Unmarshal(data, &ensembleProbe) == nil && len(ensembleProbe.Shards) > 0 {
			return nil, fmt.Errorf("cluster: blob is a single-process ensemble snapshot (%d shards); POST it to one worker's /restore, not the coordinator's", len(ensembleProbe.Shards))
		}
		return nil, fmt.Errorf("cluster: snapshot version %d unsupported (want %d)", snap.ClusterVersion, snapshotVersion)
	}
	if len(snap.Workers) == 0 {
		return nil, fmt.Errorf("cluster: snapshot holds no workers")
	}
	if _, err := validateWorkerBlobs(snap.Workers); err != nil {
		return nil, err
	}
	return &snap, nil
}

// IsClusterSnapshot reports whether data looks like a cluster Snapshot blob
// (as opposed to a single-process ensemble or counter snapshot) without
// fully validating it.
func IsClusterSnapshot(data []byte) bool {
	var probe struct {
		ClusterVersion int `json:"cluster_version"`
	}
	return json.Unmarshal(data, &probe) == nil && probe.ClusterVersion > 0
}

// Restore fans a cluster snapshot back out: worker i receives blob i on
// POST /restore. The blob must hold exactly one ensemble per configured
// worker; each worker re-validates its blob against its own configuration
// (pattern set, shard count, budget), so a mismatched deployment refuses the
// restore before any state is swapped on it. On success every worker is
// marked consistent again — Restore is how a degraded fleet heals. If any
// worker fails, the workers that did restore have swapped state while the
// failed ones kept theirs, so the error marks the failures inconsistent and
// the cluster stays degraded until a retry succeeds.
func (c *Coordinator) Restore(blob []byte) error {
	snap, err := DecodeSnapshot(blob)
	if err != nil {
		return err
	}
	if len(snap.Workers) != len(c.workers) {
		return fmt.Errorf("cluster: snapshot holds %d workers, coordinator is configured for %d", len(snap.Workers), len(c.workers))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	errs := fanout(c.workers, func(i int, w *workerRef) error {
		return c.post(w, "/restore", snap.Workers[i], nil)
	})
	var firstErr error
	for i, err := range errs {
		if err != nil {
			c.workers[i].inconsistent.Store(true)
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: worker %s: %v", ErrPartialRestore, c.workers[i].url, err)
			}
		} else {
			c.workers[i].inconsistent.Store(false)
		}
	}
	return firstErr
}

// WorkerHealth is one worker's slice of a cluster health probe.
type WorkerHealth struct {
	URL string `json:"url"`
	// Consistent is false once the worker has missed a broadcast (it needs
	// a cluster restore to rejoin).
	Consistent bool `json:"consistent"`
	// Reachable is whether the worker answered this probe.
	Reachable bool   `json:"reachable"`
	Error     string `json:"error,omitempty"`
}

// Health is the coordinator's readiness report: the fleet roster with
// per-worker consistency and reachability, and whether enough workers are
// serving to meet the read quorum.
type Health struct {
	// Status is "ok" (full fleet serving), "degraded" (some workers out but
	// quorum holds), or "unavailable" (below quorum).
	Status string `json:"status"`
	// Workers is the configured fleet size; Serving counts workers that are
	// both consistent and currently reachable.
	Workers int `json:"workers"`
	Serving int `json:"serving"`
	// Quorum is the configured read quorum; HasQuorum is Serving >= Quorum.
	Quorum    int  `json:"quorum"`
	HasQuorum bool `json:"has_quorum"`
	// Patterns and Shards describe the deployment as reported by the first
	// serving worker's /healthz (empty/zero when nothing is reachable).
	Patterns []string `json:"patterns,omitempty"`
	Shards   int      `json:"shards,omitempty"`
	// WorkersDetail lists every configured worker.
	WorkersDetail []WorkerHealth `json:"workers_detail"`
}

// Health probes every worker's /healthz concurrently and reports fleet
// readiness. Probing never mutates consistency: a worker that misses a probe
// is reported unreachable but keeps its state. Health deliberately takes no
// coordinator lock — it reads only immutable config and per-worker atomics —
// so orchestrator liveness probes keep answering even while a long Restore
// holds the write lock.
func (c *Coordinator) Health() Health {
	h := Health{Workers: len(c.workers), Quorum: c.quorum}
	h.WorkersDetail = make([]WorkerHealth, len(c.workers))
	type workerHealthz struct {
		Patterns []string `json:"patterns"`
		Shards   int      `json:"shards"`
	}
	probes := make([]*workerHealthz, len(c.workers))
	fanout(c.workers, func(i int, w *workerRef) error {
		wh := WorkerHealth{URL: w.url, Consistent: !w.inconsistent.Load()}
		raw, err := c.get(w, "/healthz")
		if err != nil {
			wh.Error = err.Error()
		} else {
			wh.Reachable = true
			var probe workerHealthz
			if json.Unmarshal(raw, &probe) == nil {
				probes[i] = &probe
			}
		}
		h.WorkersDetail[i] = wh
		return nil
	})
	uniform := true
	var ref *workerHealthz
	for i := range h.WorkersDetail {
		wh := &h.WorkersDetail[i]
		if !wh.Consistent || !wh.Reachable {
			continue
		}
		h.Serving++
		probe := probes[i]
		if probe == nil {
			continue
		}
		if ref == nil {
			ref = probe
			h.Patterns = probe.Patterns
			h.Shards = probe.Shards
			continue
		}
		// A worker counting a different pattern set (or shard shape) than
		// the rest of the fleet cannot contribute to the ensemble; readiness
		// must not show green on a fleet whose reads will all fail.
		if !slices.Equal(probe.Patterns, ref.Patterns) || probe.Shards != ref.Shards {
			uniform = false
			wh.Error = fmt.Sprintf("worker configuration differs from the fleet: patterns %v / %d shards vs %v / %d shards", probe.Patterns, probe.Shards, ref.Patterns, ref.Shards)
		}
	}
	h.HasQuorum = h.Serving >= c.quorum
	switch {
	case !h.HasQuorum:
		h.Status = "unavailable"
	case h.Serving < h.Workers || !uniform:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	return h
}
