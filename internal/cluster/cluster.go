// Package cluster distributes the shard ensemble across worker nodes: a
// coordinator that broadcasts event batches to N remote wsdserve workers —
// each itself a sharded counter — and serves scatter/gather reads by
// collecting the workers' estimates and combining them with the same
// unit-tested math (internal/combine) the in-process ensemble uses.
//
// The statistical argument is the one internal/shard already relies on, and
// it is indifferent to process boundaries: every worker ingests the complete
// stream with independently seeded randomness, so each worker estimate is an
// independent unbiased estimator of the same quantity. The mean of K worker
// estimates preserves unbiasedness and divides the variance by K; the
// median-of-means keeps sub-Gaussian concentration under the heavy right
// tail of inverse-probability estimates. A coordinator over K single-shard
// workers is therefore statistically interchangeable with one K-shard
// process — the cluster layer buys horizontal memory and CPU, not a
// different estimator.
//
// Consistency model. A worker is *consistent* while it has applied every
// broadcast since the cluster's start (or its last successful cluster
// restore). A worker that misses a broadcast — network error, crash, 5xx —
// is marked inconsistent and excluded from ingest and reads: its counter no
// longer summarizes the full stream, and an estimator over a prefix of the
// stream is not an unbiased estimator of the present graph. Inconsistent
// workers rejoin only through Restore, which resets every worker to one
// cluster-wide snapshot. Reads additionally tolerate transient
// unreachability: a consistent worker that fails one gather is skipped for
// that read (and stays consistent — its state is intact). Every read reports
// how many workers answered and whether the configured quorum was met, so a
// degraded cluster serves, visibly, from the survivors.
//
// Durability (Config.Log). With a write-ahead log attached, the model above
// gains a second, cheaper healing path. Every broadcast is appended to the
// log — canonicalized into the binary wire format, durable before any worker
// sees it — and the coordinator tracks each worker's acknowledged log
// position. A worker that misses a broadcast is marked *lagging*, not
// inconsistent: its state is a correct prefix of the stream, so the
// coordinator heals it by replaying the log tail from its last ack — at the
// next broadcast (with backoff), on CatchUp, or after a Restore — and the
// sampling estimators' determinism (the TRIEST-FD lineage is defined over the
// ordered stream) makes the healed worker bit-identical to one that never
// failed. Retention truncates the log below the fleet's minimum ack, so a
// lagging worker's tail is retained until it catches up. Only a worker whose
// reported position aligns with no logged frame boundary — restarted empty
// after retention passed its data, or fed out of band — is inconsistent in
// the old sense and needs a snapshot Restore, after which the blob's recorded
// log position lets replay finish the job ("restore from blob + log replay").
//
// Partitioned mode (Config.Partitioned). Broadcast buys variance reduction
// but zero ingest scaling — every worker applies every event. Partitioned
// mode routes instead: each edge goes to the owner(s) of its endpoints
// (internal/partition — a fixed vertex hash), so worker k samples only its
// share of the stream and the fleet's ingest scales with N. Estimates
// compose by summation (combine.Sum): each worker weighs every contribution
// by the fraction of the completing edge's endpoints it owns, and the
// coordinator divides the summed per-pattern estimates by the pattern's
// expected visibility partition.Beta, keeping the total unbiased (see
// internal/partition for the argument). Reads need the *whole* fleet — a
// missing partition is a missing share of the count, not a lost vote — so
// the quorum is pinned to the fleet size and there are no degraded reads.
// The consistency model generalizes per partition: with Config.Logs, worker
// k's substream is appended to log k before delivery, every delivery is
// stamped with its substream position (so replays are idempotent), and
// catch-up, retention, and restore-from-blob+tail-replay all run per
// partition exactly as the broadcast log runs fleet-wide.
package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	wsd "repro"

	"repro/internal/cli"
	"repro/internal/combine"
	"repro/internal/partition"
	"repro/internal/policy"
	"repro/internal/stream"
	"repro/internal/wal"
)

// Config describes the worker fleet a coordinator fronts.
type Config struct {
	// Workers are the worker base URLs ("http://host:port"; a bare
	// "host:port" gets the http scheme). At least one is required.
	Workers []string
	// Combiner folds the worker estimates (default combine.Mean; use
	// combine.MedianOfMeans for tail robustness).
	Combiner combine.Func
	// Quorum is the minimum number of workers that must answer for a read to
	// be served; values < 1 default to a majority (workers/2 + 1). Ingest
	// applies the same bar: a broadcast that lands on fewer than Quorum
	// workers is reported as an error (the events that did land stay
	// applied — single-pass streams cannot be unapplied).
	Quorum int
	// Timeout bounds each worker request (default 10s).
	Timeout time.Duration
	// Client overrides the HTTP client used for worker requests. When nil, a
	// client with Timeout applied is built; when set, Timeout is ignored and
	// the supplied client's own limits govern.
	Client *http.Client
	// Log, when non-nil, is the write-ahead log every broadcast is appended
	// to before fan-out, enabling per-worker catch-up by replay (see the
	// durability notes in the package comment). The coordinator takes
	// ownership: position tracking, retention truncation, and snapshot
	// positioning all run through it. Broadcast mode only; partitioned
	// coordinators log per partition through Logs.
	Log *wal.Log
	// Partitioned switches the coordinator from broadcast to partitioned
	// ingest: edges are routed to the owners of their endpoints, worker i
	// serving partition i of the fleet, and estimates compose by visibility-
	// corrected summation (see the package comment). Combiner must be nil
	// (the mode owns the math) and Quorum must be unset or the fleet size:
	// every partition holds an irreplaceable share of the count. Workers
	// must be configured with the matching serve.Config partition slots.
	Partitioned bool
	// Logs, in partitioned mode, are the per-partition write-ahead logs,
	// index-aligned with Workers (log i records worker i's substream). Nil
	// means no durability — a failed delivery marks its worker inconsistent,
	// as in no-log broadcast mode. When set, every entry must be non-nil and
	// the length must equal the worker count.
	Logs []*wal.Log
}

// ErrBadStream wraps a body every worker rejected as unparsable: a client
// error, not a cluster failure. No worker applied any of it (workers
// validate a whole body before applying), so the cluster stays consistent.
var ErrBadStream = errors.New("cluster: stream body rejected by workers")

// ErrNoQuorum is returned when fewer consistent workers than the configured
// quorum are available to serve a request.
var ErrNoQuorum = errors.New("cluster: below worker quorum")

// ErrPartialRestore wraps a restore fan-out that failed after validation:
// some workers swapped to the snapshot state while others kept theirs. The
// failed workers are marked inconsistent; retry the restore to heal.
var ErrPartialRestore = errors.New("cluster: restore incomplete")

// ErrPartialSwap wraps a policy swap that failed after validation: some
// workers applied the new weight function while others kept the old one, so
// the fleet's estimates no longer share one weighting. The failed workers are
// marked inconsistent; heal with a cluster Restore or a retried swap.
var ErrPartialSwap = errors.New("cluster: policy swap incomplete")

// ErrCatchUpIncomplete wraps a CatchUp (or post-restore replay) that left
// some worker behind the log end: unreachable, mid-replay failure, or
// inconsistent. Lagging workers are retried automatically at the next
// broadcast; an inconsistent worker needs a snapshot Restore.
var ErrCatchUpIncomplete = errors.New("cluster: catch-up incomplete")

// catchUpBackoff spaces automatic catch-up attempts per worker, so a worker
// that is down does not cost every broadcast a probe round trip.
const catchUpBackoff = 2 * time.Second

// workerRef is one worker endpoint plus its consistency and catch-up state.
type workerRef struct {
	url string
	// idx is the worker's fleet slot — in partitioned mode, the partition it
	// owns and the index of its write-ahead log.
	idx int
	// inconsistent is set when the worker misses a broadcast (no-log mode) or
	// when its reported position aligns with no logged frame (log mode); a
	// successful cluster Restore — or, in log mode, a probe that re-aligns —
	// clears it.
	inconsistent atomic.Bool
	// lagging (log mode only) is set when the worker misses a broadcast whose
	// frames are on the log: its state is a stream prefix and replay heals it.
	lagging atomic.Bool
	// acked/ackedEvents are the newest log position (frame index / cumulative
	// events) the worker has provably applied. The fleet minimum of acked
	// anchors retention.
	acked       atomic.Uint64
	ackedEvents atomic.Int64
	// lastCatchUp is the unix-nano time of the last catch-up attempt,
	// implementing the broadcast-path backoff.
	lastCatchUp atomic.Int64
}

// Coordinator fans ingested batches out to every worker and gathers their
// estimates into one combined read. Construct with New; the zero value is
// not usable. Safe for concurrent use.
type Coordinator struct {
	workers []*workerRef
	comb    combine.Func
	quorum  int
	client  *http.Client

	// mu guards the ingest/read side against Restore the same way
	// serve.Server does: requests hold the read lock, Restore the write
	// lock, so a restore never interleaves with a broadcast.
	mu sync.RWMutex

	// bcastMu serializes broadcasts, the cross-process analogue of the shard
	// ensemble holding its lock across the per-shard sends: without it, two
	// concurrent ingests could land on different workers in different
	// orders, and an insert/delete pair applied in opposite orders leaves
	// workers summarizing different graphs while still marked consistent.
	// Snapshot also takes it, so a cluster blob can never interleave with a
	// broadcast and capture workers at different stream positions.
	bcastMu sync.Mutex

	// encMu serializes access to the reused binary-encode buffer on the
	// programmatic submit path.
	encMu  sync.Mutex
	encBuf bytes.Buffer

	// log is the optional write-ahead log (Config.Log); replayBuf is the
	// reused catch-up body buffer, guarded by bcastMu (every replay runs
	// under it).
	log       *wal.Log
	replayBuf []byte

	// decMu serializes the reused ingest-body decode buffer (log mode:
	// IngestBytes canonicalizes the body before logging it).
	decMu  sync.Mutex
	decBuf []stream.Event

	// Partitioned mode: logs are the per-partition write-ahead logs (nil
	// without durability), routeBufs the reused per-worker routing buffers
	// and partBufs the reused per-worker encode buffers (both guarded by
	// encMu, like encBuf).
	partitioned bool
	logs        []*wal.Log
	routeBufs   [][]stream.Event
	partBufs    []bytes.Buffer
}

// New validates the worker list and returns a coordinator. The workers are
// not contacted: a coordinator can start before its fleet and report the gap
// through Health.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	seen := make(map[string]bool, len(cfg.Workers))
	refs := make([]*workerRef, 0, len(cfg.Workers))
	for _, w := range cfg.Workers {
		u := NormalizeWorkerURL(w)
		if u == "" {
			return nil, fmt.Errorf("cluster: empty worker address in %v", cfg.Workers)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: worker %s listed twice", u)
		}
		seen[u] = true
		refs = append(refs, &workerRef{url: u, idx: len(refs)})
	}
	comb := cfg.Combiner
	if comb == nil {
		comb = combine.Mean
	}
	quorum := cfg.Quorum
	if quorum < 1 {
		quorum = len(refs)/2 + 1
	}
	if quorum > len(refs) {
		return nil, fmt.Errorf("cluster: quorum %d exceeds the %d configured workers", quorum, len(refs))
	}
	if cfg.Partitioned {
		// The mode owns the read math: estimates are ownership-weighted
		// shares, so summation (with the Beta correction at read time) is the
		// only sound composition, and every partition must answer — averaging
		// or reading around a missing partition would silently bias the count.
		if cfg.Combiner != nil {
			return nil, fmt.Errorf("cluster: partitioned mode composes estimates by visibility-corrected summation; do not set Combiner")
		}
		comb = combine.Sum
		if cfg.Quorum != 0 && cfg.Quorum != len(refs) {
			return nil, fmt.Errorf("cluster: partitioned reads need the whole fleet (every partition holds an irreplaceable share); quorum %d cannot apply — leave Quorum unset", cfg.Quorum)
		}
		quorum = len(refs)
		if cfg.Log != nil {
			return nil, fmt.Errorf("cluster: partitioned mode logs per partition; set Logs (one per worker), not Log")
		}
		if cfg.Logs != nil {
			if len(cfg.Logs) != len(refs) {
				return nil, fmt.Errorf("cluster: %d write-ahead logs for %d workers; Logs must be index-aligned with Workers", len(cfg.Logs), len(refs))
			}
			for i, lg := range cfg.Logs {
				if lg == nil {
					return nil, fmt.Errorf("cluster: Logs[%d] is nil; every partition needs its own log (or none)", i)
				}
			}
		}
	} else if cfg.Logs != nil {
		return nil, fmt.Errorf("cluster: Logs is for partitioned mode; broadcast coordinators take one Log")
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	c := &Coordinator{workers: refs, comb: comb, quorum: quorum, client: client, log: cfg.Log,
		partitioned: cfg.Partitioned, logs: cfg.Logs}
	if cfg.Partitioned {
		c.routeBufs = make([][]stream.Event, len(refs))
		c.partBufs = make([]bytes.Buffer, len(refs))
	}
	return c, nil
}

// Partitioned reports whether the coordinator routes by partition instead of
// broadcasting.
func (c *Coordinator) Partitioned() bool { return c.partitioned }

// hasWAL reports whether the coordinator has write-ahead durability: one
// fleet-wide log in broadcast mode, one log per partition in partitioned
// mode.
func (c *Coordinator) hasWAL() bool {
	if c.partitioned {
		return c.logs != nil
	}
	return c.log != nil
}

// walFor resolves the write-ahead log that records worker w's stream: the
// shared log in broadcast mode, the worker's own partition log otherwise.
func (c *Coordinator) walFor(w *workerRef) *wal.Log {
	if c.partitioned {
		if c.logs == nil {
			return nil
		}
		return c.logs[w.idx]
	}
	return c.log
}

// NormalizeWorkerURL canonicalizes a worker address: trims whitespace and
// trailing slashes (a leftover slash would turn every request path into
// //ingest, which the worker mux redirects and breaks), and defaults the
// scheme to http. Empty input returns "".
func NormalizeWorkerURL(s string) string {
	u := strings.TrimSpace(s)
	u = strings.TrimRight(u, "/")
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// Workers returns the configured fleet size.
func (c *Coordinator) Workers() int { return len(c.workers) }

// Quorum returns the minimum worker count required to serve.
func (c *Coordinator) Quorum() int { return c.quorum }

// eligible returns the workers currently eligible for broadcast and gather:
// consistent and (in log mode) not lagging — a lagging worker's estimate
// summarizes a stream prefix and must not enter a combined read until replay
// catches it up.
func (c *Coordinator) eligible() []*workerRef {
	out := make([]*workerRef, 0, len(c.workers))
	for _, w := range c.workers {
		if !w.inconsistent.Load() && !w.lagging.Load() {
			out = append(out, w)
		}
	}
	return out
}

// fanout runs fn once per worker concurrently and returns the per-worker
// errors (nil entries for successes), indexed like workers.
func fanout(workers []*workerRef, fn func(i int, w *workerRef) error) []error {
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *workerRef) {
			defer wg.Done()
			errs[i] = fn(i, w)
		}(i, w)
	}
	wg.Wait()
	return errs
}

// statusError is a non-2xx worker reply; Client reports whether it was a
// 4xx, i.e. the worker validated and rejected the request without applying
// any of it.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("status %d: %s", e.code, strings.TrimSpace(e.body))
}

func (e *statusError) client() bool { return e.code >= 400 && e.code < 500 }

// post sends body to worker path and decodes a JSON reply into out (when
// non-nil).
func (c *Coordinator) post(w *workerRef, path string, body []byte, out any) error {
	return c.postStamped(w, path, body, -1, out)
}

// postStamped is post with an optional stream-position stamp (pos >= 0): the
// header declares the absolute position of the body's first event, making
// the delivery idempotent on the worker — a duplicate (a replay racing the
// original request, or a retry of a request that applied but whose response
// was lost) is skipped and reported back instead of double-applied.
func (c *Coordinator) postStamped(w *workerRef, path string, body []byte, pos int64, out any) error {
	return c.send(http.MethodPost, w, path, body, pos, out)
}

// put sends body to worker path with the PUT method (replacement semantics:
// the policy swap) and decodes a JSON reply into out (when non-nil).
func (c *Coordinator) put(w *workerRef, path string, body []byte, out any) error {
	return c.send(http.MethodPut, w, path, body, -1, out)
}

func (c *Coordinator) send(method string, w *workerRef, path string, body []byte, pos int64, out any) error {
	req, err := http.NewRequest(method, w.url+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if pos >= 0 {
		req.Header.Set(stream.PosHeader, strconv.FormatInt(pos, 10))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &statusError{code: resp.StatusCode, body: string(raw)}
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("bad reply: %w", err)
		}
	}
	return nil
}

// get fetches worker path and returns the raw body.
func (c *Coordinator) get(w *workerRef, path string) ([]byte, error) {
	resp, err := c.client.Get(w.url + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &statusError{code: resp.StatusCode, body: string(raw)}
	}
	return raw, nil
}

// IngestResult reports how a broadcast (or partitioned submit) landed.
type IngestResult struct {
	// Accepted is the event count each applying worker reported (broadcast
	// mode — every worker receives the whole batch) or the batch's event
	// count (partitioned mode — the batch is split across workers).
	Accepted int `json:"accepted"`
	// Applied is how many workers applied the batch (partitioned mode: their
	// share of it, possibly empty).
	Applied int `json:"applied"`
	// Workers is the configured fleet size.
	Workers int `json:"workers"`
}

// IngestBytes broadcasts one request body — text or binary stream format, as
// accepted by the workers' /ingest — to every consistent worker. The same
// bytes go to every worker (no re-encode, no per-worker copy). Workers that
// fail to apply are marked inconsistent and excluded until the next Restore.
//
// If every worker rejects the body as unparsable (4xx), no worker applied
// any of it and the error wraps ErrBadStream: the cluster is intact and the
// client should fix its stream. If fewer than the quorum applied, the error
// wraps ErrNoQuorum.
func (c *Coordinator) IngestBytes(raw []byte) (IngestResult, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.partitioned && c.log == nil {
		return c.broadcast(raw)
	}
	// Log and partitioned modes canonicalize before anything touches a
	// worker: the body is decoded whole (a parse error anywhere rejects it,
	// exactly the workers' own all-or-nothing validation, without N wasted
	// round trips) and re-framed, so the frames appended to a log and the
	// frames delivered are identical by construction — and a partitioned
	// coordinator needs the events regardless, to route them.
	c.decMu.Lock()
	defer c.decMu.Unlock()
	evs, err := c.decodeBody(raw)
	if err != nil {
		return IngestResult{Workers: len(c.workers)}, fmt.Errorf("%w: %v", ErrBadStream, err)
	}
	if c.partitioned {
		return c.submitPartitioned(evs)
	}
	return c.submitLogged(evs)
}

// decodeBody parses an ingest body (text or binary, sniffed like the
// workers' /ingest) into the reused decode buffer; caller holds decMu.
func (c *Coordinator) decodeBody(raw []byte) ([]stream.Event, error) {
	br, isBinary := stream.SniffBinary(bytes.NewReader(raw))
	if !isBinary {
		return stream.Read(br)
	}
	reader, err := stream.NewBinaryReader(br)
	if err != nil {
		return nil, err
	}
	evs := c.decBuf[:0]
	for {
		evs, err = reader.ReadBatchAppend(evs)
		if err == io.EOF {
			c.decBuf = evs
			return evs, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// broadcast is IngestBytes under a held read lock, shared with the
// programmatic submit path. It owns bcastMu for the whole fan-out, so every
// worker applies batches in one global order and snapshots never tear.
func (c *Coordinator) broadcast(raw []byte) (IngestResult, error) {
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	res := IngestResult{Workers: len(c.workers)}
	live := c.eligible()
	if len(live) < c.quorum {
		return res, fmt.Errorf("%w: %d consistent of %d (need %d)", ErrNoQuorum, len(live), len(c.workers), c.quorum)
	}
	accepted := make([]int, len(live))
	errs := fanout(live, func(i int, w *workerRef) error {
		var reply struct {
			Accepted int `json:"accepted"`
		}
		if err := c.post(w, "/ingest", raw, &reply); err != nil {
			return err
		}
		accepted[i] = reply.Accepted
		return nil
	})
	var (
		firstErr error
		clientRejects,
		applied int
	)
	for i, err := range errs {
		if err == nil {
			applied++
			continue
		}
		var se *statusError
		if errors.As(err, &se) && se.client() {
			clientRejects++
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("worker %s: %w", live[i].url, err)
		}
	}
	if applied == 0 && clientRejects > 0 {
		// Nothing was applied anywhere and at least one worker validated
		// the body whole and rejected it: the body is bad, not the fleet.
		// Workers that did not respond cannot have applied it either — the
		// same bytes fail the same validation (the fleet is uniform) — so
		// nobody is marked inconsistent and the client gets its error back.
		return res, fmt.Errorf("%w: %v", ErrBadStream, firstErr)
	}
	for i, err := range errs {
		if err != nil {
			// Some worker applied this batch (or the outcome is unknowable:
			// every request failed in transit and a lost response may have
			// followed an apply), so an errored worker's state no longer
			// provably covers the stream.
			live[i].inconsistent.Store(true)
		} else if accepted[i] > res.Accepted {
			res.Accepted = accepted[i]
		}
	}
	res.Applied = applied
	if applied < c.quorum {
		return res, fmt.Errorf("%w: %d of %d workers applied (need %d): %v", ErrNoQuorum, applied, len(c.workers), c.quorum, firstErr)
	}
	return res, nil
}

// SubmitBatch encodes one event batch in the binary wire format and
// broadcasts it, the programmatic equivalent of POSTing to every worker. The
// encode buffer is reused across calls, so steady-state submission allocates
// only what the HTTP client needs. In log mode the batch is appended to the
// write-ahead log before the fan-out.
func (c *Coordinator) SubmitBatch(evs []stream.Event) error {
	if len(evs) == 0 {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.partitioned {
		_, err := c.submitPartitioned(evs)
		return err
	}
	if c.log != nil {
		_, err := c.submitLogged(evs)
		return err
	}
	c.encMu.Lock()
	defer c.encMu.Unlock()
	body, err := c.encodeBody(evs)
	if err != nil {
		return err
	}
	_, err = c.broadcast(body)
	return err
}

// encodeBody canonicalizes a batch into one binary wire body in the reused
// encode buffer; caller holds encMu. WriteBatch splits at
// stream.MaxFrameEvents, the same boundaries the log-mode append uses, so a
// logged frame and a broadcast frame are always the same bytes.
func (c *Coordinator) encodeBody(evs []stream.Event) ([]byte, error) {
	return encodeInto(&c.encBuf, evs)
}

// encodeInto canonicalizes a batch into one binary wire body in the given
// reused buffer (the partitioned path encodes one body per worker).
func encodeInto(buf *bytes.Buffer, evs []stream.Event) ([]byte, error) {
	buf.Reset()
	bw, err := stream.NewBinaryWriter(buf)
	if err != nil {
		return nil, err
	}
	if err := bw.WriteBatch(evs); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// submitLogged is the log-mode ingest path: canonical encode, append to the
// log, then fan out — in that order, so a frame no worker has applied yet is
// already durable and a worker that misses it is healable by replay. Caller
// holds the read lock.
func (c *Coordinator) submitLogged(evs []stream.Event) (IngestResult, error) {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	res := IngestResult{Workers: len(c.workers)}
	body, err := c.encodeBody(evs)
	if err != nil {
		return res, err
	}
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	// Heal first: a lagging worker past its backoff rejoins before this
	// batch, so one missed broadcast costs one gap, not permanent exclusion.
	c.healLagging(false)
	live := c.eligible()
	if len(live) < c.quorum {
		return res, fmt.Errorf("%w: %d serving of %d (need %d)", ErrNoQuorum, len(live), len(c.workers), c.quorum)
	}
	// The stamp is the stream position before this batch: every delivery of
	// these frames — this broadcast, a catch-up replay, or a duplicate of
	// either — declares the same position, so a worker applies the events
	// exactly once no matter how many copies reach it or in what order.
	startEvents := c.log.Events()
	for lo := 0; lo < len(evs); lo += stream.MaxFrameEvents {
		hi := lo + stream.MaxFrameEvents
		if hi > len(evs) {
			hi = len(evs)
		}
		if _, err := c.log.Append(evs[lo:hi]); err != nil {
			// Nothing was broadcast: the cluster is consistent and the
			// client can retry once the log is writable again.
			return res, fmt.Errorf("cluster: write-ahead log append: %w", err)
		}
	}
	endPos, endEvents := c.log.End(), c.log.Events()
	accepted := make([]int, len(live))
	errs := fanout(live, func(i int, w *workerRef) error {
		var reply struct {
			Accepted  int `json:"accepted"`
			Duplicate int `json:"duplicate"`
		}
		if err := c.postStamped(w, "/ingest", body, startEvents, &reply); err != nil {
			return err
		}
		// Duplicates count as covered: the worker already holds those events
		// (an earlier delivery applied but its response was lost).
		accepted[i] = reply.Accepted + reply.Duplicate
		return nil
	})
	var firstErr error
	applied := 0
	for i, err := range errs {
		if err == nil {
			applied++
			live[i].acked.Store(endPos)
			live[i].ackedEvents.Store(endEvents)
			if accepted[i] > res.Accepted {
				res.Accepted = accepted[i]
			}
			continue
		}
		// The body is canonical — this coordinator encoded it — so a
		// rejection is never a bad stream: the worker is out of step, and
		// because the frames are on the log, replay (not a cluster restore)
		// heals it.
		live[i].lagging.Store(true)
		live[i].lastCatchUp.Store(time.Now().UnixNano())
		if firstErr == nil {
			firstErr = fmt.Errorf("worker %s: %w", live[i].url, err)
		}
	}
	res.Applied = applied
	c.truncateToMinAck()
	if applied < c.quorum {
		return res, fmt.Errorf("%w: %d of %d workers applied (need %d): %v", ErrNoQuorum, applied, len(c.workers), c.quorum, firstErr)
	}
	return res, nil
}

// truncateToMinAck retires sealed log segments the whole fleet has passed;
// bcastMu held. Every worker's ack — lagging and inconsistent included —
// pins retention: a lagging worker's replay tail must be retained until it
// catches up, and an inconsistent worker's stale ack still brackets where a
// recent snapshot may sit. Only Restore (which re-seeds every ack from the
// blob's position) moves an irrecoverably behind worker forward.
//
// When *no* consistent worker remains, the minimum ack is a minimum over
// stale bookmarks only — positions no live state backs. Acks can sit above
// the last truncation point without any consistent state behind them (a
// Restore seeds and replays acks without truncating), so truncating to that
// minimum could retire exactly the tail the healing snapshot restore needs
// to replay ("restore from blob + tail"). A fully inconsistent fleet
// therefore pins retention outright: no truncation until a restore brings a
// worker back. In partitioned mode each partition's log answers to its one
// worker — the single-worker instance of the same rule: truncate log i to
// worker i's ack, or not at all while that worker is inconsistent.
// Truncation failures are left for the next attempt.
func (c *Coordinator) truncateToMinAck() {
	if c.partitioned {
		for _, w := range c.workers {
			if w.inconsistent.Load() {
				continue
			}
			c.logs[w.idx].TruncateBefore(w.acked.Load())
		}
		return
	}
	anyConsistent := false
	min := c.workers[0].acked.Load()
	for _, w := range c.workers {
		if !w.inconsistent.Load() {
			anyConsistent = true
		}
		if a := w.acked.Load(); a < min {
			min = a
		}
	}
	if !anyConsistent {
		return
	}
	c.log.TruncateBefore(min)
}

// SubmitPooled broadcasts a pooled batch (the PR 3 zero-copy ingest
// currency) and releases it: the batch's events are encoded once into the
// coordinator's reused wire buffer and the same bytes go to every worker.
func (c *Coordinator) SubmitPooled(b *stream.Batch) error {
	err := c.SubmitBatch(b.Events)
	b.Release()
	return err
}

// errStopChunk is the internal sentinel replayTo uses to cut a replay body
// at its size bound.
var errStopChunk = errors.New("cluster: replay chunk full")

// healLagging attempts catch-up on lagging workers past their backoff;
// bcastMu held. With force, every worker is probed and re-aligned — the
// CatchUp/boot/post-restore path, which also repatriates inconsistent
// workers whose position turns out to align after all (e.g. after the
// coordinator restarted and lost its ack table).
func (c *Coordinator) healLagging(force bool) {
	now := time.Now().UnixNano()
	for _, w := range c.workers {
		if !force {
			if !w.lagging.Load() || w.inconsistent.Load() {
				continue
			}
			if last := w.lastCatchUp.Load(); now-last < int64(catchUpBackoff) {
				continue
			}
		}
		c.catchUpWorker(w)
	}
}

// catchUpWorker heals one worker by log replay; bcastMu held. It probes the
// worker's absolute stream position, aligns it to a logged frame boundary,
// and replays the tail above it. Success clears lagging (and inconsistent);
// a probe or replay failure leaves the worker lagging for the next attempt;
// a position that aligns with no retained frame marks it inconsistent — only
// a snapshot restore can bridge that gap.
func (c *Coordinator) catchUpWorker(w *workerRef) error {
	lg := c.walFor(w)
	w.lastCatchUp.Store(time.Now().UnixNano())
	raw, err := c.get(w, "/healthz")
	if err != nil {
		w.lagging.Store(true)
		return fmt.Errorf("worker %s: probe: %w", w.url, err)
	}
	var probe struct {
		Position int64 `json:"position"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		w.lagging.Store(true)
		return fmt.Errorf("worker %s: probe: %w", w.url, err)
	}
	pos, ok := lg.PosForEvents(probe.Position)
	if !ok {
		w.inconsistent.Store(true)
		if probe.Position < lg.BaseEvents() {
			return fmt.Errorf("worker %s is at event %d but retention begins at event %d (%v); restore a cluster snapshot to heal", w.url, probe.Position, lg.BaseEvents(), wal.ErrTruncated)
		}
		return fmt.Errorf("worker %s reports position %d, which aligns with no logged frame boundary; restore a cluster snapshot to heal", w.url, probe.Position)
	}
	// Alignment certifies the worker's state as a log prefix (the fleet only
	// ever receives canonical logged frames), so it is healable from here.
	w.inconsistent.Store(false)
	w.acked.Store(pos)
	w.ackedEvents.Store(probe.Position)
	if err := c.replayTo(w); err != nil {
		w.lagging.Store(true)
		return fmt.Errorf("worker %s: replay: %w", w.url, err)
	}
	w.lagging.Store(false)
	return nil
}

// replayTo streams the log tail above the worker's ack as chunked binary
// /ingest bodies — stored frame payloads copied verbatim behind a stream
// header, so the worker applies exactly the frames (and frame boundaries) the
// live fleet did. Every chunk is stamped with the worker's acknowledged event
// count (the absolute position of the chunk's first event), so a replay that
// races a duplicate of an earlier delivery is skipped, not double-applied;
// events the worker already held come back in the reply's duplicate count and
// still count as covered. The worker's ack advances per applied chunk;
// bcastMu held.
func (c *Coordinator) replayTo(w *workerRef) error {
	const maxReplayBody = 4 << 20
	lg := c.walFor(w)
	for {
		start := w.acked.Load()
		if start >= lg.End() {
			return nil
		}
		startEvents := w.ackedEvents.Load()
		body := stream.AppendBinaryHeader(c.replayBuf[:0])
		var (
			chunkEnd uint64
			total    int
		)
		err := lg.ReplayPayloads(start, func(pos uint64, events int, payload []byte) error {
			body = binary.AppendUvarint(body, uint64(len(payload)))
			body = append(body, payload...)
			chunkEnd = pos
			total += events
			if len(body) >= maxReplayBody {
				return errStopChunk
			}
			return nil
		})
		c.replayBuf = body[:0]
		if err != nil && !errors.Is(err, errStopChunk) {
			return err
		}
		if chunkEnd == 0 || chunkEnd <= start {
			return nil // nothing above start survived into this chunk
		}
		var reply struct {
			Accepted  int `json:"accepted"`
			Duplicate int `json:"duplicate"`
		}
		if err := c.postStamped(w, "/ingest", body, startEvents, &reply); err != nil {
			return err
		}
		if reply.Accepted+reply.Duplicate != total {
			return fmt.Errorf("accepted %d of %d replayed events (%d duplicate)", reply.Accepted, total, reply.Duplicate)
		}
		ev, ok := lg.EventsAt(chunkEnd)
		if !ok {
			return fmt.Errorf("%w: position %d left the retained range during replay", wal.ErrTruncated, chunkEnd)
		}
		w.acked.Store(chunkEnd)
		w.ackedEvents.Store(ev)
	}
}

// CatchUp probes every worker, re-aligns its acknowledged position from its
// reported absolute position, and replays whatever tail it is missing — the
// explicit healing entry point (POST /catchup, coordinator boot, after
// Restore). It returns nil only when the whole fleet is caught up to the log
// end; otherwise the error wraps ErrCatchUpIncomplete and the stragglers
// stay marked for automatic retry.
func (c *Coordinator) CatchUp() error {
	if !c.hasWAL() {
		return fmt.Errorf("cluster: no write-ahead log configured (start the coordinator with -wal-dir)")
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	var firstErr error
	for _, w := range c.workers {
		if err := c.catchUpWorker(w); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.truncateToMinAck()
	if firstErr != nil {
		return fmt.Errorf("%w: %v", ErrCatchUpIncomplete, firstErr)
	}
	return nil
}

// Log returns the attached write-ahead log (nil without one, and nil in
// partitioned mode — see Logs).
func (c *Coordinator) Log() *wal.Log { return c.log }

// Logs returns the per-partition write-ahead logs of a partitioned
// coordinator (nil without durability, and nil in broadcast mode — see Log).
func (c *Coordinator) Logs() []*wal.Log { return c.logs }

// Estimate is a combined scatter/gather read over the worker fleet.
type Estimate struct {
	// Estimate is the combined primary-pattern estimate.
	Estimate float64 `json:"estimate"`
	// Estimates maps every served pattern to its combined estimate.
	Estimates map[string]float64 `json:"estimates"`
	// Patterns is the served pattern set in estimator order.
	Patterns []string `json:"patterns"`
	// WorkerEstimates is each gathered worker's primary estimate, in fleet
	// order of the workers that answered — the spread is an empirical
	// variance check, exactly like the single-process /estimate "shards"
	// field.
	WorkerEstimates []float64 `json:"worker_estimates"`
	// Processed is the minimum processed-event count across the gathered
	// workers.
	Processed int64 `json:"processed"`
	// Workers is the configured fleet size; Gathered is how many answered
	// this read.
	Workers  int `json:"workers"`
	Gathered int `json:"gathered"`
	// Quorum is the configured read quorum; Degraded is true when any
	// configured worker did not contribute.
	Quorum   int  `json:"quorum"`
	Degraded bool `json:"degraded"`
	// Window and Halflife report the fleet's temporal serving mode (zero for
	// whole-stream), verified uniform across the gathered workers — a fleet
	// mixing windowed and whole-stream workers would combine estimates of
	// different quantities.
	Window   int64   `json:"window"`
	Halflife float64 `json:"halflife"`
}

// workerEstimate is the slice of a worker's /estimate reply the gather
// needs.
type workerEstimate struct {
	Estimate  float64            `json:"estimate"`
	Estimates map[string]float64 `json:"estimates"`
	Patterns  []string           `json:"patterns"`
	Processed int64              `json:"processed"`
	Window    int64              `json:"window"`
	Halflife  float64            `json:"halflife"`
}

// Estimate gathers every consistent worker's estimates and combines them per
// pattern with the coordinator's combiner. Consistent workers that fail the
// gather are skipped (and stay consistent — reads do not mutate state); the
// reply reports how many answered. Fewer answers than the quorum is an
// ErrNoQuorum error. Workers serving different pattern sets (or different
// estimate-vector widths) are a deployment error and fail the read.
func (c *Coordinator) Estimate() (*Estimate, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	live := c.eligible()
	replies := make([]*workerEstimate, len(live))
	fanout(live, func(i int, w *workerRef) error {
		raw, err := c.get(w, "/estimate")
		if err != nil {
			return err
		}
		var we workerEstimate
		if err := json.Unmarshal(raw, &we); err != nil {
			return err
		}
		replies[i] = &we
		return nil
	})
	var gathered []*workerEstimate
	for _, r := range replies {
		if r != nil {
			gathered = append(gathered, r)
		}
	}
	out := &Estimate{
		Workers:  len(c.workers),
		Gathered: len(gathered),
		Quorum:   c.quorum,
		Degraded: len(gathered) < len(c.workers),
	}
	if len(gathered) < c.quorum {
		return out, fmt.Errorf("%w: gathered %d of %d workers (need %d)", ErrNoQuorum, len(gathered), len(c.workers), c.quorum)
	}
	patterns := gathered[0].Patterns
	if len(patterns) == 0 {
		// A reply with no pattern list would combine into a width-0 vector;
		// the endpoint is answering JSON but is not a (current) wsdserve
		// worker — a deployment error, reported instead of served.
		return out, fmt.Errorf("cluster: worker reply carries no pattern estimates; is every -workers entry a wsdserve worker?")
	}
	vectors := make([][]float64, len(gathered))
	out.Processed = gathered[0].Processed
	out.Window, out.Halflife = gathered[0].Window, gathered[0].Halflife
	if c.partitioned {
		out.Processed = 0
	}
	for i, g := range gathered {
		if !slices.Equal(g.Patterns, patterns) {
			return out, fmt.Errorf("cluster: workers serve different pattern sets (%v vs %v); the fleet must be configured uniformly", patterns, g.Patterns)
		}
		if g.Window != out.Window || g.Halflife != out.Halflife {
			// A window/halflife split means the workers are estimating
			// different quantities; combining them would be silently wrong.
			return out, fmt.Errorf("cluster: workers serve different temporal modes (window=%d halflife=%v vs window=%d halflife=%v); the fleet must be configured uniformly",
				out.Window, out.Halflife, g.Window, g.Halflife)
		}
		vec := make([]float64, 0, len(patterns))
		for _, p := range patterns {
			v, ok := g.Estimates[p]
			if !ok {
				return out, fmt.Errorf("cluster: worker reply missing estimate for pattern %s", p)
			}
			vec = append(vec, v)
		}
		vectors[i] = vec
		out.WorkerEstimates = append(out.WorkerEstimates, g.Estimate)
		if c.partitioned {
			// The fleet splits the stream, so fleet progress is the sum of the
			// partitions' positions. (A two-owner edge is delivered to both
			// owners and counted by each, so this can exceed the client-side
			// event count — it measures deliveries, the unit acks and replay
			// use, not unique edges.)
			out.Processed += g.Processed
		} else if g.Processed < out.Processed {
			out.Processed = g.Processed
		}
	}
	combined, err := combine.Vectors(vectors, c.comb)
	if err != nil {
		return out, fmt.Errorf("cluster: %w", err)
	}
	if c.partitioned {
		// The summed per-pattern estimates total the ownership-weighted shares
		// of the pattern instances each partition can see; dividing by the
		// expected visibility Beta (a pure function of pattern and fleet size)
		// restores unbiasedness. See internal/partition for the derivation.
		for i, p := range patterns {
			kind, err := cli.ParsePattern(p)
			if err != nil {
				return out, fmt.Errorf("cluster: worker reports pattern %q: %w", p, err)
			}
			combined[i] /= partition.Beta(kind, len(c.workers))
		}
	}
	out.Patterns = patterns
	out.Estimate = combined[0]
	out.Estimates = make(map[string]float64, len(patterns))
	for i, p := range patterns {
		out.Estimates[p] = combined[i]
	}
	return out, nil
}

// Snapshot is the serialized state of the whole cluster: one worker ensemble
// snapshot per worker, in fleet order. ClusterVersion guards the format; the
// field name is distinct from the per-process snapshots' "version" so the
// facade and the workers can recognize (and refuse) a cluster blob handed to
// a single-process restore.
type Snapshot struct {
	ClusterVersion int               `json:"cluster_version"`
	Workers        []json.RawMessage `json:"workers"`
	// WAL, present on snapshots taken by a log-mode coordinator, records the
	// log position the blob describes: restoring it re-seeds every worker's
	// acknowledged position there, and replaying the log above it brings the
	// fleet to the present — the "restore from blob + log replay" guarantee.
	WAL *WALMark `json:"wal,omitempty"`
	// Partitioned marks a blob taken by a partitioned coordinator. Worker i's
	// blob holds partition i's sample, which describes a share of the graph
	// rather than all of it, so a partitioned blob restores only onto a
	// partitioned coordinator of the same fleet size (and vice versa).
	Partitioned bool `json:"partitioned,omitempty"`
	// WALs, present on snapshots taken by a partitioned coordinator with
	// per-partition logs, records each partition log's position at the blob —
	// the per-partition analogue of WAL, with the same restore-then-replay
	// guarantee running independently per partition.
	WALs []WALMark `json:"wals,omitempty"`
}

// WALMark is a stream position as the write-ahead log measures it: a frame
// index and the cumulative event count through it.
type WALMark struct {
	Position uint64 `json:"position"`
	Events   int64  `json:"events"`
}

// snapshotVersion guards the cluster snapshot wire format.
const snapshotVersion = 1

// Flush fans POST /flush out to the whole fleet and blocks until every
// worker has applied every batch delivered before the call: a fleet-wide
// position barrier. Broadcasts are excluded while it runs (same locking as
// Snapshot), so when Flush returns nil a subsequent Estimate reflects every
// completed submission. Unlike Snapshot it moves no state — this is the
// barrier to use when the caller wants read-your-writes, not a checkpoint.
func (c *Coordinator) Flush() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	errs := fanout(c.workers, func(i int, w *workerRef) error {
		return c.post(w, "/flush", nil, nil)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: flush worker %s: %w", c.workers[i].url, err)
		}
	}
	return nil
}

// Snapshot fans GET /snapshot out to the whole fleet and returns one
// versioned cluster blob. Every configured worker must contribute: a
// snapshot missing a worker could not restore the full cluster, so a
// degraded fleet cannot be checkpointed (restore it first). Each worker blob
// is validated (reusing the facade's snapshot inspection, core
// validation included) and the fleet must be uniform — same pattern set and
// shard shape on every worker.
func (c *Coordinator) Snapshot() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	// Excluding broadcasts while the snapshot fans out is what makes the
	// blob a single stream position: every completed broadcast is on every
	// worker, and none is mid-flight on some workers only. Reads stay
	// concurrent (they take neither lock exclusively).
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	if live := c.eligible(); len(live) < len(c.workers) {
		return nil, fmt.Errorf("cluster: %d of %d workers are not serving (lagging or inconsistent); a cluster snapshot needs the whole fleet (catch it up or restore it first)", len(c.workers)-len(live), len(c.workers))
	}
	snap := Snapshot{ClusterVersion: snapshotVersion, Workers: make([]json.RawMessage, len(c.workers)), Partitioned: c.partitioned}
	if c.log != nil {
		// Under bcastMu no broadcast is mid-flight and every eligible worker
		// has acked the log end, so the fleet sits at exactly this position.
		snap.WAL = &WALMark{Position: c.log.End(), Events: c.log.Events()}
	}
	if c.partitioned && c.logs != nil {
		// Same argument per partition: worker i has acked log i's end.
		snap.WALs = make([]WALMark, len(c.logs))
		for i, lg := range c.logs {
			snap.WALs[i] = WALMark{Position: lg.End(), Events: lg.Events()}
		}
	}
	errs := fanout(c.workers, func(i int, w *workerRef) error {
		raw, err := c.get(w, "/snapshot")
		if err != nil {
			return err
		}
		snap.Workers[i] = raw
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: snapshot worker %s: %w", c.workers[i].url, err)
		}
	}
	infos, err := validateWorkerBlobs(snap.Workers)
	if err != nil {
		return nil, err
	}
	if snap.WAL != nil {
		// The workers' own recorded positions must agree with the log —
		// a mismatch means some worker's state is not the logged stream, and
		// a blob that replays wrongly is worse than no blob.
		for i, info := range infos {
			if info.Position != snap.WAL.Events {
				return nil, fmt.Errorf("cluster: worker %s snapshot is at position %d, the log is at %d; the blob does not describe one stream position", c.workers[i].url, info.Position, snap.WAL.Events)
			}
		}
	}
	if snap.WALs != nil {
		// Per-partition check: worker i's position is its substream position
		// and must agree with partition log i.
		for i, info := range infos {
			if info.Position != snap.WALs[i].Events {
				return nil, fmt.Errorf("cluster: worker %s snapshot is at position %d, its partition log is at %d; the blob does not describe one stream position", c.workers[i].url, info.Position, snap.WALs[i].Events)
			}
		}
	}
	return json.Marshal(snap)
}

// validateWorkerBlobs inspects every worker ensemble blob (which runs the
// core snapshot validation on each shard) and checks fleet uniformity,
// returning the per-worker infos.
func validateWorkerBlobs(blobs []json.RawMessage) ([]wsd.ShardedSnapshotInfo, error) {
	infos := make([]wsd.ShardedSnapshotInfo, len(blobs))
	for i, raw := range blobs {
		info, err := wsd.InspectShardedSnapshot(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d snapshot: %w", i, err)
		}
		infos[i] = info
		if i == 0 {
			continue
		}
		if info.Pattern != infos[0].Pattern || !slices.Equal(info.Patterns, infos[0].Patterns) {
			return nil, fmt.Errorf("cluster: worker %d counts a different pattern set than worker 0; the fleet must be uniform", i)
		}
		if info.Shards != infos[0].Shards {
			return nil, fmt.Errorf("cluster: worker %d holds %d shards, worker 0 holds %d; the fleet must be uniform", i, info.Shards, infos[0].Shards)
		}
	}
	return infos, nil
}

// DecodeSnapshot parses and validates a cluster Snapshot blob — version,
// per-worker ensemble decode (core validation included), and fleet
// uniformity — without contacting any worker.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("cluster: decode snapshot: %w", err)
	}
	if snap.ClusterVersion != snapshotVersion {
		// The mirror image of the facade's cluster-blob refusal: a
		// single-process ensemble blob has no cluster_version, so point the
		// operator at the right endpoint instead of reporting "version 0".
		var ensembleProbe struct {
			Version int               `json:"version"`
			Shards  []json.RawMessage `json:"shards"`
		}
		if snap.ClusterVersion == 0 && json.Unmarshal(data, &ensembleProbe) == nil && len(ensembleProbe.Shards) > 0 {
			return nil, fmt.Errorf("cluster: blob is a single-process ensemble snapshot (%d shards); POST it to one worker's /restore, not the coordinator's", len(ensembleProbe.Shards))
		}
		return nil, fmt.Errorf("cluster: snapshot version %d unsupported (want %d)", snap.ClusterVersion, snapshotVersion)
	}
	if len(snap.Workers) == 0 {
		return nil, fmt.Errorf("cluster: snapshot holds no workers")
	}
	if _, err := validateWorkerBlobs(snap.Workers); err != nil {
		return nil, err
	}
	return &snap, nil
}

// IsClusterSnapshot reports whether data looks like a cluster Snapshot blob
// (as opposed to a single-process ensemble or counter snapshot) without
// fully validating it.
func IsClusterSnapshot(data []byte) bool {
	var probe struct {
		ClusterVersion int `json:"cluster_version"`
	}
	return json.Unmarshal(data, &probe) == nil && probe.ClusterVersion > 0
}

// Restore fans a cluster snapshot back out: worker i receives blob i on
// POST /restore. The blob must hold exactly one ensemble per configured
// worker; each worker re-validates its blob against its own configuration
// (pattern set, shard count, budget), so a mismatched deployment refuses the
// restore before any state is swapped on it. On success every worker is
// marked consistent again — Restore is how a degraded fleet heals. If any
// worker fails, the workers that did restore have swapped state while the
// failed ones kept theirs, so the error marks the failures inconsistent and
// the cluster stays degraded until a retry succeeds.
func (c *Coordinator) Restore(blob []byte) error {
	snap, err := DecodeSnapshot(blob)
	if err != nil {
		return err
	}
	if len(snap.Workers) != len(c.workers) {
		return fmt.Errorf("cluster: snapshot holds %d workers, coordinator is configured for %d", len(snap.Workers), len(c.workers))
	}
	if snap.Partitioned != c.partitioned {
		// Worker blobs carry whole-stream samples in broadcast mode and
		// per-partition shares in partitioned mode; crossing the modes would
		// restore state that silently estimates the wrong quantity.
		if snap.Partitioned {
			return fmt.Errorf("cluster: snapshot was taken by a partitioned coordinator; this coordinator broadcasts")
		}
		return fmt.Errorf("cluster: snapshot was taken by a broadcast coordinator; this coordinator is partitioned")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	// Position the blob against the log(s) before any worker state is
	// touched: the restore is only useful if the log can carry the fleet from
	// the blob's position to the present. marks[i] is worker i's mark — the
	// shared one in broadcast mode, its partition log's in partitioned mode.
	marks := make([]*WALMark, len(c.workers))
	if !c.partitioned && c.log != nil {
		mark, err := positionMark(c.log, snap.WAL)
		if err != nil {
			return err
		}
		for i := range marks {
			marks[i] = mark
		}
	}
	if c.partitioned && c.logs != nil {
		if snap.WALs != nil && len(snap.WALs) != len(c.logs) {
			return fmt.Errorf("cluster: snapshot records %d partition log positions, coordinator has %d logs", len(snap.WALs), len(c.logs))
		}
		for i, lg := range c.logs {
			var m *WALMark
			if snap.WALs != nil {
				m = &snap.WALs[i]
			}
			mark, err := positionMark(lg, m)
			if err != nil {
				return fmt.Errorf("partition %d: %w", i, err)
			}
			marks[i] = mark
		}
	}
	errs := fanout(c.workers, func(i int, w *workerRef) error {
		return c.post(w, "/restore", snap.Workers[i], nil)
	})
	var firstErr error
	for i, err := range errs {
		w := c.workers[i]
		if err != nil {
			w.inconsistent.Store(true)
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: worker %s: %v", ErrPartialRestore, w.url, err)
			}
		} else {
			w.inconsistent.Store(false)
			if mark := marks[i]; mark != nil {
				w.acked.Store(mark.Position)
				w.ackedEvents.Store(mark.Events)
				w.lagging.Store(mark.Position < c.walFor(w).End())
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	// Where a blob is behind its log's present, finish the job by replay, so
	// a successful restore always lands the fleet at the log end(s). A replay
	// failure is retried automatically at the next broadcast.
	var replayErr error
	for i, w := range c.workers {
		mark := marks[i]
		if mark == nil || mark.Position >= c.walFor(w).End() {
			continue
		}
		if err := c.replayTo(w); err != nil {
			w.lagging.Store(true)
			if replayErr == nil {
				replayErr = fmt.Errorf("%w: worker %s: %v", ErrCatchUpIncomplete, w.url, err)
			}
			continue
		}
		w.lagging.Store(false)
	}
	return replayErr
}

// positionMark validates a snapshot's recorded position against one
// write-ahead log (see Restore): behind retention is fatal, ahead of the log
// re-anchors an empty log at the mark, inside the range must align with a
// frame boundary holding the recorded event count. A nil mark (a blob from
// before the log existed) is sound only on a fresh log and positions at zero.
func positionMark(lg *wal.Log, mark *WALMark) (*WALMark, error) {
	if mark == nil {
		if lg.End() != 0 || lg.Base() != 0 {
			return nil, fmt.Errorf("cluster: snapshot carries no log position but the log spans (%d, %d]; take a fresh cluster snapshot (which records its position) or start from an empty -wal-dir", lg.Base(), lg.End())
		}
		return &WALMark{}, nil
	}
	switch {
	case mark.Position < lg.Base():
		return nil, fmt.Errorf("cluster: snapshot is at position %d but retention begins at %d (%v); take a fresh cluster snapshot", mark.Position, lg.Base(), wal.ErrTruncated)
	case mark.Position > lg.End():
		// Ahead of the log: sound only when the log holds no frames at all (a
		// fresh directory) — the blob supplies everything through its mark and
		// the log re-anchors there.
		if err := lg.RebaseEmpty(mark.Position, mark.Events); err != nil {
			return nil, fmt.Errorf("cluster: snapshot is at position %d but the log ends at %d: %v", mark.Position, lg.End(), err)
		}
	default:
		if ev, ok := lg.EventsAt(mark.Position); !ok || ev != mark.Events {
			return nil, fmt.Errorf("cluster: snapshot records %d events at position %d, the log has %d; snapshot and log describe different streams", mark.Events, mark.Position, ev)
		}
	}
	return mark, nil
}

// SwapPolicy fans a policy artifact out to the whole fleet as PUT /policy:
// every worker quiesces its ensemble and swaps its weight function to the
// artifact's policy, reservoir state untouched. The swap needs the full fleet
// — a worker that keeps the old weights would contribute estimates weighted
// differently from the rest, which the combiner cannot reconcile — so a
// degraded fleet refuses the swap before any worker changes (catch it up or
// restore it first).
//
// The artifact is decoded and validated locally first: a malformed blob is a
// plain client error and no worker is contacted. If every worker validated
// and rejected the artifact (4xx) nothing was applied anywhere and the fleet
// stays uniform; the error is again the client's. Any other failure after at
// least one worker swapped leaves the fleet running two weight functions: the
// failed workers are marked inconsistent (excluded from reads) and the error
// wraps ErrPartialSwap — retry the swap or Restore to heal.
func (c *Coordinator) SwapPolicy(artifact []byte) error {
	if _, err := policy.Decode(artifact); err != nil {
		return err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	// Excluding broadcasts while the swap fans out gives every worker the
	// weight flip at the same stream position — the fleet analogue of the
	// ensemble's quiesce barrier.
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	if live := c.eligible(); len(live) < len(c.workers) {
		return fmt.Errorf("cluster: %d of %d workers are not serving (lagging or inconsistent); a policy swap needs the whole fleet (catch it up or restore it first)", len(c.workers)-len(live), len(c.workers))
	}
	errs := fanout(c.workers, func(i int, w *workerRef) error {
		return c.put(w, "/policy", artifact, nil)
	})
	var (
		firstErr error
		clientRejects,
		applied int
	)
	for i, err := range errs {
		if err == nil {
			applied++
			continue
		}
		var se *statusError
		if errors.As(err, &se) && se.client() {
			clientRejects++
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("worker %s: %w", c.workers[i].url, err)
		}
	}
	if applied == len(c.workers) {
		return nil
	}
	if applied == 0 && clientRejects == len(c.workers) {
		// Every worker validated the artifact whole and rejected it (e.g. the
		// pattern does not match the deployment): nothing changed anywhere, the
		// fleet still runs one weight function.
		return fmt.Errorf("cluster: policy rejected by workers: %v", firstErr)
	}
	for i, err := range errs {
		if err != nil {
			// Some worker swapped (or the outcome is unknowable), so a worker
			// that did not provably apply the new policy no longer weights
			// events like the rest of the fleet.
			c.workers[i].inconsistent.Store(true)
		}
	}
	return fmt.Errorf("%w: %d of %d workers swapped: %v", ErrPartialSwap, applied, len(c.workers), firstErr)
}

// PolicyStatus gathers GET /policy from the serving workers, verifies the
// fleet runs one policy, and returns the first worker's reply verbatim.
func (c *Coordinator) PolicyStatus() (json.RawMessage, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	live := c.eligible()
	if len(live) < c.quorum {
		return nil, fmt.Errorf("%w: %d serving of %d (need %d)", ErrNoQuorum, len(live), len(c.workers), c.quorum)
	}
	replies := make([][]byte, len(live))
	errs := fanout(live, func(i int, w *workerRef) error {
		raw, err := c.get(w, "/policy")
		replies[i] = raw
		return err
	})
	var (
		ref      json.RawMessage
		refID    string
		refURL   string
		gathered int
	)
	for i, raw := range replies {
		if errs[i] != nil {
			continue
		}
		gathered++
		var probe struct {
			Policy string `json:"policy"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("cluster: worker %s /policy reply: %w", live[i].url, err)
		}
		if ref == nil {
			ref, refID, refURL = raw, probe.Policy, live[i].url
			continue
		}
		if probe.Policy != refID {
			return nil, fmt.Errorf("cluster: workers run different policies (%s on %s, %s on %s); swap through the coordinator to keep the fleet uniform", refID, refURL, probe.Policy, live[i].url)
		}
	}
	if gathered < c.quorum {
		return nil, fmt.Errorf("%w: gathered %d of %d workers (need %d)", ErrNoQuorum, gathered, len(c.workers), c.quorum)
	}
	return ref, nil
}

// WorkerHealth is one worker's slice of a cluster health probe.
type WorkerHealth struct {
	URL string `json:"url"`
	// Consistent is false once the worker's state cannot be healed by log
	// replay (or, without a log, once it has missed any broadcast); it needs
	// a cluster restore to rejoin.
	Consistent bool `json:"consistent"`
	// Reachable is whether the worker answered this probe.
	Reachable bool   `json:"reachable"`
	Error     string `json:"error,omitempty"`
	// Lagging (log mode) is true while the worker is behind the log and
	// awaiting catch-up replay; it is excluded from reads meanwhile.
	Lagging bool `json:"lagging,omitempty"`
	// Position is the worker's self-reported absolute stream position (log
	// mode, reachable workers only); Acked is the newest log position the
	// coordinator has confirmed on it.
	Position int64  `json:"position,omitempty"`
	Acked    uint64 `json:"acked,omitempty"`
	// Policy is the worker's self-reported active weight function: a learned
	// policy's content ID, or "heuristic".
	Policy string `json:"policy,omitempty"`
}

// WALHealth is the coordinator's view of its write-ahead log.
type WALHealth struct {
	Dir string `json:"dir"`
	// Base..End is the retained position range; Events the cumulative event
	// count through End; Segments the segment file count.
	Base     uint64 `json:"base"`
	End      uint64 `json:"end"`
	Events   int64  `json:"events"`
	Segments int    `json:"segments"`
}

// Health is the coordinator's readiness report: the fleet roster with
// per-worker consistency and reachability, and whether enough workers are
// serving to meet the read quorum.
type Health struct {
	// Status is "ok" (full fleet serving), "degraded" (some workers out but
	// quorum holds), or "unavailable" (below quorum).
	Status string `json:"status"`
	// Workers is the configured fleet size; Serving counts workers that are
	// both consistent and currently reachable.
	Workers int `json:"workers"`
	Serving int `json:"serving"`
	// Quorum is the configured read quorum; HasQuorum is Serving >= Quorum.
	Quorum    int  `json:"quorum"`
	HasQuorum bool `json:"has_quorum"`
	// Patterns and Shards describe the deployment as reported by the first
	// serving worker's /healthz (empty/zero when nothing is reachable);
	// Policy is its active weight function (a policy content ID or
	// "heuristic"). Every serving worker must agree on all three — a worker
	// weighting events under a different policy than the rest of the fleet
	// degrades health, exactly like a mismatched pattern set.
	Patterns []string `json:"patterns,omitempty"`
	Shards   int      `json:"shards,omitempty"`
	Policy   string   `json:"policy,omitempty"`
	// Window and Halflife are the fleet's temporal serving mode as reported
	// by the first serving worker (zero for whole-stream); a worker on a
	// different mode degrades health like a mismatched pattern set.
	Window   int64   `json:"window,omitempty"`
	Halflife float64 `json:"halflife,omitempty"`
	// Partitioned reports the coordinator's ingest mode; in partitioned mode
	// each worker's partition slot is verified against its fleet index, so a
	// mis-deployed worker (wrong -partition-index, or not partitioned at all)
	// degrades health instead of silently biasing every read.
	Partitioned bool `json:"partitioned,omitempty"`
	// WAL reports the write-ahead log's retained range (broadcast log mode);
	// WALs the per-partition ranges (partitioned log mode, fleet order).
	WAL  *WALHealth  `json:"wal,omitempty"`
	WALs []WALHealth `json:"wals,omitempty"`
	// WorkersDetail lists every configured worker.
	WorkersDetail []WorkerHealth `json:"workers_detail"`
}

// Health probes every worker's /healthz concurrently and reports fleet
// readiness. Probing never mutates consistency: a worker that misses a probe
// is reported unreachable but keeps its state. Health deliberately takes no
// coordinator lock — it reads only immutable config and per-worker atomics —
// so orchestrator liveness probes keep answering even while a long Restore
// holds the write lock.
func (c *Coordinator) Health() Health {
	h := Health{Workers: len(c.workers), Quorum: c.quorum, Partitioned: c.partitioned}
	h.WorkersDetail = make([]WorkerHealth, len(c.workers))
	if c.log != nil {
		h.WAL = &WALHealth{
			Dir:      c.log.Dir(),
			Base:     c.log.Base(),
			End:      c.log.End(),
			Events:   c.log.Events(),
			Segments: c.log.Segments(),
		}
	}
	if c.partitioned && c.logs != nil {
		h.WALs = make([]WALHealth, len(c.logs))
		for i, lg := range c.logs {
			h.WALs[i] = WALHealth{
				Dir:      lg.Dir(),
				Base:     lg.Base(),
				End:      lg.End(),
				Events:   lg.Events(),
				Segments: lg.Segments(),
			}
		}
	}
	type workerHealthz struct {
		Patterns  []string `json:"patterns"`
		Shards    int      `json:"shards"`
		Position  int64    `json:"position"`
		Policy    string   `json:"policy"`
		Window    int64    `json:"window"`
		Halflife  float64  `json:"halflife"`
		Partition *struct {
			Index int `json:"index"`
			Count int `json:"count"`
		} `json:"partition"`
	}
	probes := make([]*workerHealthz, len(c.workers))
	fanout(c.workers, func(i int, w *workerRef) error {
		wh := WorkerHealth{URL: w.url, Consistent: !w.inconsistent.Load(), Lagging: w.lagging.Load()}
		if c.hasWAL() {
			wh.Acked = w.acked.Load()
		}
		raw, err := c.get(w, "/healthz")
		if err != nil {
			wh.Error = err.Error()
		} else {
			wh.Reachable = true
			var probe workerHealthz
			if json.Unmarshal(raw, &probe) == nil {
				probes[i] = &probe
				wh.Policy = probe.Policy
				if c.hasWAL() {
					wh.Position = probe.Position
				}
			}
		}
		h.WorkersDetail[i] = wh
		return nil
	})
	uniform := true
	var ref *workerHealthz
	for i := range h.WorkersDetail {
		wh := &h.WorkersDetail[i]
		if !wh.Consistent || !wh.Reachable || wh.Lagging {
			continue
		}
		h.Serving++
		probe := probes[i]
		if probe == nil {
			continue
		}
		// Partition slots are per-worker config, not fleet-wide: worker i must
		// serve partition i of exactly this fleet size under a partitioned
		// coordinator (its sampling weights depend on it), and must not weight
		// by partition at all under a broadcast one.
		if c.partitioned {
			if probe.Partition == nil {
				uniform = false
				wh.Error = "worker is not configured for partitioned ingest (no partition slot in /healthz); start it with -partition-index and -partition-count"
			} else if probe.Partition.Index != i || probe.Partition.Count != len(c.workers) {
				uniform = false
				wh.Error = fmt.Sprintf("worker serves partition %d of %d but holds fleet slot %d of %d; fix its -partition-index/-partition-count", probe.Partition.Index, probe.Partition.Count, i, len(c.workers))
			}
		} else if probe.Partition != nil {
			uniform = false
			wh.Error = fmt.Sprintf("worker weights events for partition %d of %d but this coordinator broadcasts; remove its partition flags", probe.Partition.Index, probe.Partition.Count)
		}
		if ref == nil {
			ref = probe
			h.Patterns = probe.Patterns
			h.Shards = probe.Shards
			h.Policy = probe.Policy
			h.Window = probe.Window
			h.Halflife = probe.Halflife
			continue
		}
		// A worker counting a different pattern set (or shard shape) than
		// the rest of the fleet cannot contribute to the ensemble; readiness
		// must not show green on a fleet whose reads will all fail.
		if !slices.Equal(probe.Patterns, ref.Patterns) || probe.Shards != ref.Shards {
			uniform = false
			wh.Error = fmt.Sprintf("worker configuration differs from the fleet: patterns %v / %d shards vs %v / %d shards", probe.Patterns, probe.Shards, ref.Patterns, ref.Shards)
		} else if probe.Policy != ref.Policy {
			// A split-policy fleet (a partial swap, or a worker restarted with
			// stale boot flags) weights events inconsistently across workers;
			// its combined estimates mix estimators of different variance
			// silently, so readiness reports it instead.
			uniform = false
			wh.Error = fmt.Sprintf("worker runs policy %s but the fleet reference runs %s; re-run the policy swap or restore a cluster snapshot", probe.Policy, ref.Policy)
		} else if probe.Window != ref.Window || probe.Halflife != ref.Halflife {
			// A split temporal mode means the workers estimate different
			// quantities; every combined read would be silently wrong.
			uniform = false
			wh.Error = fmt.Sprintf("worker serves window=%d halflife=%v but the fleet reference serves window=%d halflife=%v; restart it with matching flags", probe.Window, probe.Halflife, ref.Window, ref.Halflife)
		}
	}
	h.HasQuorum = h.Serving >= c.quorum
	switch {
	case !h.HasQuorum:
		h.Status = "unavailable"
	case h.Serving < h.Workers || !uniform:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	return h
}
