// Package cluster_test drives the coordinator against real in-process
// wsdserve workers over httptest; it lives outside the cluster package
// because it builds the workers through internal/serve, which itself imports
// cluster for the coordinator front end.
package cluster_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	wsd "repro"

	"repro/internal/cluster"
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/weights"
	"repro/internal/xrand"
)

// testFleet spins n in-process wsdserve workers, each a single-shard triangle
// counter with budget budgets[i] and facade seed seeds[i], and returns their
// URLs plus the httptest servers (close them to simulate worker death).
func testFleet(t *testing.T, budgets []int, seeds []int64) ([]string, []*httptest.Server) {
	t.Helper()
	urls := make([]string, len(budgets))
	servers := make([]*httptest.Server, len(budgets))
	for i := range budgets {
		srv, err := serve.New(serve.Config{
			Pattern: wsd.TrianglePattern,
			M:       budgets[i],
			Shards:  1,
			Options: []wsd.Option{wsd.WithSeed(seeds[i])},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { srv.Close() })
		urls[i] = ts.URL
		servers[i] = ts
	}
	return urls, servers
}

func testStream(t *testing.T, seed int64, n int) stream.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := gen.HolmeKim(n, 4, 0.6, rng)
	return stream.LightDeletion(edges, 0.2, rng)
}

// feed pushes the stream through the coordinator in modest batches, the way
// a socket ingester would.
func feed(t *testing.T, c *cluster.Coordinator, s stream.Stream) {
	t.Helper()
	const batch = 128
	for lo := 0; lo < len(s); lo += batch {
		hi := min(lo+batch, len(s))
		if err := c.SubmitBatch(s[lo:hi]); err != nil {
			t.Fatalf("submit events [%d:%d): %v", lo, hi, err)
		}
	}
}

// quiescedEstimate snapshots the cluster (which quiesces every worker, so
// estimates reflect every ingested event) and then gathers.
func quiescedEstimate(t *testing.T, c *cluster.Coordinator) *cluster.Estimate {
	t.Helper()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	est, err := c.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestCoordinatorMatchesInProcessEnsemble is the cluster smoke check: a
// coordinator over 3 single-shard workers must produce *exactly* the
// combined estimate of an in-process 3-shard ensemble built from identically
// seeded, identically budgeted counters — same members, same combine math
// (internal/combine in both cases), so the distribution across processes
// must change nothing.
func TestCoordinatorMatchesInProcessEnsemble(t *testing.T) {
	s := testStream(t, 21, 500)
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{101, 102, 103}

	// The in-process reference: the same three counters the workers run
	// (facade single-shard construction uses xrand.NewSequence(seed, 0) and
	// the default heuristic with temporal features skipped).
	counters := make([]shard.Counter, 3)
	for i := range counters {
		c, err := core.New(core.Config{
			M:            budgets[i],
			Pattern:      wsd.TrianglePattern,
			Weight:       weights.GPSDefault(),
			Rng:          xrand.NewSequence(seeds[i], 0),
			SkipTemporal: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		counters[i] = c
	}
	ens, err := shard.New(counters)
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.SubmitBatch(s); err != nil {
		t.Fatal(err)
	}
	want := ens.Close()

	urls, _ := testFleet(t, budgets, seeds)
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coord, s)
	est := quiescedEstimate(t, coord)
	if est.Estimate != want {
		t.Fatalf("cluster estimate %v, in-process ensemble %v (must match exactly)", est.Estimate, want)
	}
	if est.Gathered != 3 || est.Degraded || !contains(est.Patterns, "triangle") {
		t.Fatalf("healthy-read metadata wrong: %+v", est)
	}
	if est.Processed != int64(len(s)) {
		t.Fatalf("processed %d of %d", est.Processed, len(s))
	}
	if len(est.WorkerEstimates) != 3 {
		t.Fatalf("worker estimates %v, want 3 entries", est.WorkerEstimates)
	}
}

// TestCoordinatorMedianOfMeansCombiner: the configured combiner must be
// applied to the gathered worker estimates with the shared combine math.
func TestCoordinatorMedianOfMeansCombiner(t *testing.T) {
	s := testStream(t, 5, 300)
	budgets := shard.SplitBudget(450, 3)
	seeds := []int64{7, 8, 9}
	urls, _ := testFleet(t, budgets, seeds)
	coord, err := cluster.New(cluster.Config{Workers: urls, Combiner: combine.MedianOfMeans(3)})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coord, s)
	est := quiescedEstimate(t, coord)
	want := combine.MedianOfMeans(3)(append([]float64(nil), est.WorkerEstimates...))
	if est.Estimate != want {
		t.Fatalf("combined %v, median-of-means over worker estimates %v", est.Estimate, want)
	}
}

// TestClusterSnapshotRestoreBitIdentical is the e2e checkpoint check: ingest
// half the stream, snapshot the cluster, restore the blob onto a fresh
// fleet, ingest the rest there — the final estimate must equal a cluster
// that saw the whole stream uninterrupted, bit for bit.
func TestClusterSnapshotRestoreBitIdentical(t *testing.T) {
	s := testStream(t, 33, 600)
	cut := len(s) / 2
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{11, 12, 13}

	// Fleet A: the uninterrupted run.
	urlsA, _ := testFleet(t, budgets, seeds)
	coordA, err := cluster.New(cluster.Config{Workers: urlsA})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coordA, s)
	want := quiescedEstimate(t, coordA).Estimate

	// Fleet B: interrupted mid-stream and checkpointed.
	urlsB, _ := testFleet(t, budgets, seeds)
	coordB, err := cluster.New(cluster.Config{Workers: urlsB})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coordB, s[:cut])
	blob, err := coordB.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !cluster.IsClusterSnapshot(blob) {
		t.Fatal("snapshot blob not recognized as a cluster snapshot")
	}

	// Fleet C: brand-new workers (deliberately different construction seeds
	// — the snapshot carries the RNG state, so the boot seed must not
	// matter), restored from the blob, fed the remainder.
	urlsC, _ := testFleet(t, budgets, []int64{991, 992, 993})
	coordC, err := cluster.New(cluster.Config{Workers: urlsC})
	if err != nil {
		t.Fatal(err)
	}
	if err := coordC.Restore(blob); err != nil {
		t.Fatal(err)
	}
	feed(t, coordC, s[cut:])
	if got := quiescedEstimate(t, coordC).Estimate; got != want {
		t.Fatalf("restored cluster estimate %v, uninterrupted %v (must be bit-identical)", got, want)
	}
}

// TestDegradedReadAfterWorkerDeath is the survivability check: killing one
// of three workers must leave the cluster serving from the survivors with
// the degradation reported; killing two (below the majority quorum) must
// stop reads with ErrNoQuorum.
func TestDegradedReadAfterWorkerDeath(t *testing.T) {
	s := testStream(t, 17, 400)
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{31, 32, 33}
	urls, servers := testFleet(t, budgets, seeds)
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coord, s)
	healthy := quiescedEstimate(t, coord)

	servers[1].Close()

	est, err := coord.Estimate()
	if err != nil {
		t.Fatalf("degraded read failed outright: %v", err)
	}
	if est.Gathered != 2 || !est.Degraded {
		t.Fatalf("degraded read metadata: %+v, want gathered=2 degraded=true", est)
	}
	// The survivors' mean: exactly the healthy read's worker estimates 0 and
	// 2 combined.
	want := combine.Mean([]float64{healthy.WorkerEstimates[0], healthy.WorkerEstimates[2]})
	if est.Estimate != want {
		t.Fatalf("degraded estimate %v, survivors' mean %v", est.Estimate, want)
	}

	// A degraded-but-quorate cluster reports itself truthfully.
	h := coord.Health()
	if h.Status != "degraded" || h.Serving != 2 || !h.HasQuorum {
		t.Fatalf("health after one death: %+v", h)
	}

	// Ingest keeps flowing to the survivors (quorum 2 of 3 still holds); the
	// dead worker is now inconsistent and stays excluded.
	if err := coord.SubmitBatch(s[:10]); err != nil {
		t.Fatalf("ingest after one death: %v", err)
	}

	// A whole-fleet snapshot must refuse while a worker is missing: the blob
	// could not restore the full cluster.
	if _, err := coord.Snapshot(); err == nil {
		t.Fatal("snapshot of a degraded cluster must fail")
	}

	servers[2].Close()
	if _, err := coord.Estimate(); err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("read below quorum: err = %v, want quorum error", err)
	}
	if h := coord.Health(); h.Status != "unavailable" || h.HasQuorum {
		t.Fatalf("health below quorum: %+v", h)
	}
}

// TestIngestMarksMissedWorkerInconsistent: a worker that misses a broadcast
// must be excluded from subsequent reads even if it comes back — its counter
// no longer summarizes the full stream.
func TestIngestMarksMissedWorkerInconsistent(t *testing.T) {
	s := testStream(t, 3, 200)
	budgets := shard.SplitBudget(300, 3)
	urls, servers := testFleet(t, budgets, []int64{1, 2, 3})
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coord, s[:100])

	servers[0].Close()
	if err := coord.SubmitBatch(s[100:150]); err != nil {
		t.Fatalf("broadcast with one dead worker (quorum holds): %v", err)
	}
	h := coord.Health()
	if h.WorkersDetail[0].Consistent {
		t.Fatalf("worker 0 missed a broadcast but is still consistent: %+v", h)
	}
	est, err := coord.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Gathered != 2 {
		t.Fatalf("gathered %d, want 2 (inconsistent worker excluded)", est.Gathered)
	}
}

// TestBadBodyOnDegradedFleetDoesNotBrick: a corrupt request while one worker
// is unreachable must come back as a client error with the fleet untouched —
// the responding workers rejected the body whole, so nobody's state moved
// and nobody may be marked inconsistent.
func TestBadBodyOnDegradedFleetDoesNotBrick(t *testing.T) {
	s := testStream(t, 41, 200)
	budgets := shard.SplitBudget(300, 3)
	urls, servers := testFleet(t, budgets, []int64{61, 62, 63})
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coord, s[:100])

	servers[1].Close()
	if _, err := coord.IngestBytes([]byte("not a stream\n")); !errors.Is(err, cluster.ErrBadStream) {
		t.Fatalf("bad body on degraded fleet: err = %v, want ErrBadStream", err)
	}
	// The survivors are still consistent and keep serving; only the dead
	// worker is unreachable.
	h := coord.Health()
	if !h.WorkersDetail[0].Consistent || !h.WorkersDetail[2].Consistent {
		t.Fatalf("bad body marked surviving workers inconsistent: %+v", h)
	}
	if err := coord.SubmitBatch(s[100:150]); err != nil {
		t.Fatalf("valid ingest after the bad body: %v", err)
	}
	est, err := coord.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Gathered != 2 {
		t.Fatalf("gathered %d, want the 2 survivors", est.Gathered)
	}
}

// TestEstimateRejectsPatternlessWorker: an endpoint that answers JSON
// without a pattern list is not a wsdserve worker; the read must error, not
// panic on a width-0 estimate vector.
func TestEstimateRejectsPatternlessWorker(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"estimate": 1}`)
	}))
	t.Cleanup(fake.Close)
	coord, err := cluster.New(cluster.Config{Workers: []string{fake.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Estimate(); err == nil || !strings.Contains(err.Error(), "no pattern estimates") {
		t.Fatalf("patternless worker: err = %v, want a no-pattern-estimates error", err)
	}
}

// TestHealthFlagsNonUniformFleet: readiness must not show green on a fleet
// whose workers count different pattern sets — every read would fail while
// /healthz said ok.
func TestHealthFlagsNonUniformFleet(t *testing.T) {
	urls, _ := testFleet(t, []int{200, 200}, []int64{1, 2})
	odd, err := serve.New(serve.Config{Pattern: wsd.WedgePattern, M: 200, Shards: 1,
		Options: []wsd.Option{wsd.WithSeed(3)}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(odd.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { odd.Close() })

	coord, err := cluster.New(cluster.Config{Workers: append(urls, ts.URL)})
	if err != nil {
		t.Fatal(err)
	}
	h := coord.Health()
	if h.Status != "degraded" {
		t.Fatalf("non-uniform fleet health: %+v, want degraded", h)
	}
	if h.WorkersDetail[2].Error == "" || !strings.Contains(h.WorkersDetail[2].Error, "differs") {
		t.Fatalf("odd worker not flagged: %+v", h.WorkersDetail[2])
	}
}

// TestRestoreValidation: blobs that do not describe this fleet must be
// refused before any worker state is touched.
func TestRestoreValidation(t *testing.T) {
	budgets := shard.SplitBudget(300, 3)
	urls, _ := testFleet(t, budgets, []int64{1, 2, 3})
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}

	if err := coord.Restore([]byte("{")); err == nil {
		t.Fatal("garbage blob accepted")
	}

	// A single-process ensemble blob must be refused with a pointer at the
	// worker endpoint.
	ens, err := wsd.NewShardedCounter(wsd.TrianglePattern, 300, 2, wsd.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	ensBlob, err := ens.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ens.Close()
	if err := coord.Restore(ensBlob); err == nil || !strings.Contains(err.Error(), "single-process ensemble") {
		t.Fatalf("ensemble blob: err = %v, want single-process-ensemble refusal", err)
	}

	// The facade's restore dispatch must refuse a cluster blob symmetrically.
	two, _ := testFleet(t, budgets[:2], []int64{5, 6})
	coord2, err := cluster.New(cluster.Config{Workers: two})
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := coord2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wsd.RestoreShardedCounter(blob2); err == nil || !strings.Contains(err.Error(), "cluster snapshot") {
		t.Fatalf("facade restore of cluster blob: err = %v, want cluster-snapshot refusal", err)
	}
	if _, err := wsd.InspectShardedSnapshot(blob2); err == nil {
		t.Fatal("facade inspect of cluster blob must fail")
	}

	// A 2-worker blob cannot restore a 3-worker fleet.
	if err := coord.Restore(blob2); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("wrong fleet size: err = %v", err)
	}
}

// TestNewValidation covers the constructor's misconfiguration rejections.
func TestNewValidation(t *testing.T) {
	if _, err := cluster.New(cluster.Config{}); err == nil {
		t.Fatal("empty worker list accepted")
	}
	if _, err := cluster.New(cluster.Config{Workers: []string{"a:1", "a:1"}}); err == nil {
		t.Fatal("duplicate worker accepted")
	}
	if _, err := cluster.New(cluster.Config{Workers: []string{"http://a:1/", "a:1"}}); err == nil {
		t.Fatal("duplicate worker (normalized spelling) accepted")
	}
	if got := cluster.NormalizeWorkerURL(" a:1// "); got != "http://a:1" {
		t.Fatalf("NormalizeWorkerURL trailing slashes: %q, want http://a:1", got)
	}
	if _, err := cluster.New(cluster.Config{Workers: []string{"a:1"}, Quorum: 2}); err == nil {
		t.Fatal("quorum above fleet size accepted")
	}
	c, err := cluster.New(cluster.Config{Workers: []string{"a:1", "b:2", "c:3"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Quorum() != 2 {
		t.Fatalf("default quorum %d, want majority 2 of 3", c.Quorum())
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestFlushIsAFleetBarrier: after Flush returns, every worker reports the
// full stream applied — without the state serialization Snapshot pays — and
// a degraded fleet (dead worker) fails the barrier instead of lying.
func TestFlushIsAFleetBarrier(t *testing.T) {
	s := testStream(t, 33, 400)
	budgets := shard.SplitBudget(600, 3)
	urls, servers := testFleet(t, budgets, []int64{201, 202, 203})
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coord, s)
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}
	est, err := coord.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Processed != int64(len(s)) {
		t.Fatalf("after Flush, processed %d of %d", est.Processed, len(s))
	}
	servers[1].Close()
	if err := coord.Flush(); err == nil {
		t.Fatal("Flush with a dead worker must fail")
	}
}
