// Fault-injection suite for the write-ahead-logged coordinator: workers are
// killed mid-stream and restarted empty, the coordinator crashes over a torn
// append, and restores land on logs ahead of the blob — in every case the
// healed fleet must agree bit for bit with an uninterrupted in-process
// ensemble on the same seeds, because log replay re-delivers the exact frame
// sequence the failure interrupted.
package cluster_test

import (
	"errors"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	wsd "repro"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/wal"
	"repro/internal/weights"
	"repro/internal/xrand"
)

// restartableWorker is a single-shard wsdserve worker that can be killed and
// brought back — fresh and empty — on the same address, so a coordinator
// holding its URL sees the same endpoint die and return with no state.
type restartableWorker struct {
	addr   string
	budget int
	seed   int64
	// partitionIndex/partitionCount, when count > 0, give the worker a
	// partition slot (the partitioned suite's fleets); a restart keeps the
	// slot, as a redeployed pod would.
	partitionIndex, partitionCount int
	ts                             *httptest.Server
	srv                            *serve.Server
}

func newRestartableWorker(t *testing.T, budget int, seed int64) *restartableWorker {
	t.Helper()
	w := &restartableWorker{budget: budget, seed: seed}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.addr = l.Addr().String()
	w.start(t, l)
	t.Cleanup(func() {
		if w.ts != nil {
			w.kill()
		}
	})
	return w
}

func (w *restartableWorker) start(t *testing.T, l net.Listener) {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Pattern:        wsd.TrianglePattern,
		M:              w.budget,
		Shards:         1,
		Options:        []wsd.Option{wsd.WithSeed(w.seed)},
		PartitionIndex: w.partitionIndex,
		PartitionCount: w.partitionCount,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	w.ts, w.srv = ts, srv
}

// kill drops the worker mid-stream: the listener closes, in-flight and
// future requests fail, and the process state is gone.
func (w *restartableWorker) kill() {
	w.ts.Close()
	w.srv.Close()
	w.ts, w.srv = nil, nil
}

// restart brings the worker back empty on its old address — a fresh process
// with zero ingested events and only its construction seed, which the
// snapshot-free catch-up path must not depend on.
func (w *restartableWorker) restart(t *testing.T) {
	t.Helper()
	l, err := net.Listen("tcp", w.addr)
	if err != nil {
		t.Fatal(err)
	}
	w.start(t, l)
}

// walFleet builds n restartable workers and a logged coordinator over them.
func walFleet(t *testing.T, budgets []int, seeds []int64, opts wal.Options) ([]*restartableWorker, *cluster.Coordinator, *wal.Log) {
	t.Helper()
	workers := make([]*restartableWorker, len(budgets))
	urls := make([]string, len(budgets))
	for i := range budgets {
		workers[i] = newRestartableWorker(t, budgets[i], seeds[i])
		urls[i] = "http://" + workers[i].addr
	}
	log, err := wal.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	coord, err := cluster.New(cluster.Config{Workers: urls, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	return workers, coord, log
}

// referenceEnsemble is the uninterrupted in-process ground truth: the same
// counters the workers run, fed the same stream in one process.
func referenceEnsemble(t *testing.T, budgets []int, seeds []int64) *shard.Ensemble {
	t.Helper()
	counters := make([]shard.Counter, len(budgets))
	for i := range counters {
		c, err := core.New(core.Config{
			M:            budgets[i],
			Pattern:      wsd.TrianglePattern,
			Weight:       weights.GPSDefault(),
			Rng:          xrand.NewSequence(seeds[i], 0),
			SkipTemporal: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		counters[i] = c
	}
	ens, err := shard.New(counters)
	if err != nil {
		t.Fatal(err)
	}
	return ens
}

// TestWorkerKillRestartCatchUp is the acceptance check for the durability
// layer: a worker killed mid-stream and restarted with nothing but its
// construction seed must rejoin through log replay alone, and every estimate
// after the heal must be bit-identical to an uninterrupted in-process
// ensemble on the same seeds — replay re-delivers the exact frames, in the
// exact boundaries, the worker missed.
func TestWorkerKillRestartCatchUp(t *testing.T) {
	s := testStream(t, 21, 600)
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{101, 102, 103}

	ref := referenceEnsemble(t, budgets, seeds)
	if err := ref.SubmitBatch(s); err != nil {
		t.Fatal(err)
	}
	want := ref.Close()

	workers, coord, log := walFleet(t, budgets, seeds, wal.Options{})
	feed(t, coord, s[:200])

	// Kill one worker; the stream keeps flowing on quorum, with the dead
	// worker marked lagging (its prefix is in the log), not inconsistent.
	workers[1].kill()
	feed(t, coord, s[200:400])
	h := coord.Health()
	if !h.WorkersDetail[1].Lagging {
		t.Fatalf("killed worker not lagging: %+v", h.WorkersDetail[1])
	}
	if !h.WorkersDetail[1].Consistent {
		t.Fatalf("killed worker marked inconsistent (unreachable is not divergence): %+v", h.WorkersDetail[1])
	}
	est, err := coord.Estimate()
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if est.Gathered != 2 {
		t.Fatalf("gathered %d while one worker is down, want 2", est.Gathered)
	}

	// Restart it empty and catch it up from the log: no snapshot, no operator
	// state, just replay from position zero.
	workers[1].restart(t)
	if err := coord.CatchUp(); err != nil {
		t.Fatalf("catch-up after empty restart: %v", err)
	}
	h = coord.Health()
	if h.WorkersDetail[1].Lagging || !h.WorkersDetail[1].Consistent {
		t.Fatalf("worker not healed: %+v", h.WorkersDetail[1])
	}
	if h.WorkersDetail[1].Acked != log.End() {
		t.Fatalf("healed worker acked %d, log ends at %d", h.WorkersDetail[1].Acked, log.End())
	}

	// The healed fleet finishes the stream and lands exactly on the
	// uninterrupted ensemble.
	feed(t, coord, s[400:])
	got := quiescedEstimate(t, coord)
	if got.Estimate != want {
		t.Fatalf("healed cluster estimate %v, uninterrupted ensemble %v (must be bit-identical)", got.Estimate, want)
	}
	if got.Gathered != 3 || got.Degraded {
		t.Fatalf("healed read metadata: %+v", got)
	}
	if got.Processed != int64(len(s)) {
		t.Fatalf("processed %d of %d", got.Processed, len(s))
	}

	// And the restarted worker individually matches its never-killed twin:
	// compare against a second, uninterrupted fleet on the same seeds.
	urlsB, _ := testFleet(t, budgets, seeds)
	coordB, err := cluster.New(cluster.Config{Workers: urlsB})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coordB, s)
	wantWorkers := quiescedEstimate(t, coordB).WorkerEstimates
	for i, e := range got.WorkerEstimates {
		if e != wantWorkers[i] {
			t.Fatalf("worker %d estimate %v, uninterrupted twin %v", i, e, wantWorkers[i])
		}
	}
}

// TestCoordinatorCrashReopenTornFrame: a coordinator crash mid-append leaves
// a torn record at the log tail. A new coordinator over the reopened log must
// truncate the tear, realign the fleet from the workers' self-reported
// positions, and continue to the uninterrupted answer.
func TestCoordinatorCrashReopenTornFrame(t *testing.T) {
	s := testStream(t, 33, 600)
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{11, 12, 13}

	ref := referenceEnsemble(t, budgets, seeds)
	if err := ref.SubmitBatch(s); err != nil {
		t.Fatal(err)
	}
	want := ref.Close()

	workers, coordA, logA := walFleet(t, budgets, seeds, wal.Options{})
	feed(t, coordA, s[:300])
	dir := logA.Dir()
	if err := logA.Close(); err != nil {
		t.Fatal(err)
	}

	// The crash: a partial record lands after the last whole frame — written
	// durably, broadcast never happened.
	seg := filepath.Join(dir, "wal-00000000000000000000.seg")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x80, 0x02, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The restarted coordinator: fresh process, same log dir, same worker
	// URLs, no memory of any ack.
	logB, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen over torn frame: %v", err)
	}
	t.Cleanup(func() { logB.Close() })
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = "http://" + w.addr
	}
	coordB, err := cluster.New(cluster.Config{Workers: urls, Log: logB})
	if err != nil {
		t.Fatal(err)
	}
	if err := coordB.CatchUp(); err != nil {
		t.Fatalf("boot catch-up: %v", err)
	}
	feed(t, coordB, s[300:])
	if got := quiescedEstimate(t, coordB).Estimate; got != want {
		t.Fatalf("post-crash cluster estimate %v, uninterrupted ensemble %v", got, want)
	}
}

// TestRestoreSeedsAcksAndReplaysTail: restoring a positioned blob onto a log
// that has advanced past it must replay the gap — the workers land at the
// blob's position, the log supplies the rest, and the fleet finishes on the
// uninterrupted answer. This is "restore from blob + log replay": checkpoints
// no longer have to be the newest state, only a retained position.
func TestRestoreSeedsAcksAndReplaysTail(t *testing.T) {
	s := testStream(t, 47, 600)
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{71, 72, 73}

	ref := referenceEnsemble(t, budgets, seeds)
	if err := ref.SubmitBatch(s); err != nil {
		t.Fatal(err)
	}
	want := ref.Close()

	_, coord, log := walFleet(t, budgets, seeds, wal.Options{})
	feed(t, coord, s[:300])
	blob, err := coord.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The stream moves on after the checkpoint: the blob is now stale by 150
	// events, all of them in the log.
	feed(t, coord, s[300:450])
	staleBy := log.Events()

	// Disaster: replace the whole fleet with brand-new empty workers (new
	// construction seeds — the blob carries the RNG state) behind a new
	// coordinator sharing the log.
	urlsC, _ := testFleet(t, budgets, []int64{991, 992, 993})
	coordC, err := cluster.New(cluster.Config{Workers: urlsC, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	if err := coordC.Restore(blob); err != nil {
		t.Fatalf("restore onto advanced log: %v", err)
	}
	if staleBy != log.Events() {
		t.Fatalf("restore moved the log: %d events, had %d", log.Events(), staleBy)
	}
	// The post-restore replay already closed the gap: every worker serves.
	h := coordC.Health()
	for i, wh := range h.WorkersDetail {
		if wh.Lagging || !wh.Consistent {
			t.Fatalf("worker %d not caught up after restore: %+v", i, wh)
		}
	}
	feed(t, coordC, s[450:])
	if got := quiescedEstimate(t, coordC).Estimate; got != want {
		t.Fatalf("restore+replay estimate %v, uninterrupted ensemble %v", got, want)
	}
}

// TestBeyondRetentionRestartNeedsRestore: once retention has dropped the
// prefix an empty restart would need, catch-up must refuse loudly (the
// worker is inconsistent, not silently wrong) and a restore onto a fresh log
// — the runbook's answer — must heal the fleet back to bit-identity.
func TestBeyondRetentionRestartNeedsRestore(t *testing.T) {
	s := testStream(t, 55, 600)
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{81, 82, 83}

	ref := referenceEnsemble(t, budgets, seeds)
	if err := ref.SubmitBatch(s); err != nil {
		t.Fatal(err)
	}
	want := ref.Close()

	// Tiny segments so retention actually removes the prefix. The snapshot is
	// taken early — at log position 1 — so the fleet's acks can carry
	// retention past it.
	workers, coord, log := walFleet(t, budgets, seeds, wal.Options{SegmentBytes: 512})
	feed(t, coord, s[:100])
	blob, err := coord.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blobPos := log.End()
	// Everyone acks far past the snapshot; retention trims the log behind the
	// fleet's minimum, dropping the blob's position.
	feed(t, coord, s[100:450])
	if log.Base() <= blobPos {
		t.Fatalf("retention did not pass the blob (base %d, blob at %d); the scenario needs a dropped prefix", log.Base(), blobPos)
	}

	// An empty restart now reaches for truncated history: catch-up must fail
	// with the retention sentinel and mark the worker inconsistent.
	workers[2].kill()
	workers[2].restart(t)
	err = coord.CatchUp()
	if err == nil || !errors.Is(err, cluster.ErrCatchUpIncomplete) {
		t.Fatalf("catch-up beyond retention: err = %v, want ErrCatchUpIncomplete", err)
	}
	if !strings.Contains(err.Error(), "restore") {
		t.Fatalf("catch-up error does not point at the restore runbook: %v", err)
	}
	if h := coord.Health(); h.WorkersDetail[2].Consistent {
		t.Fatalf("beyond-retention worker still consistent: %+v", h.WorkersDetail[2])
	}

	// The old blob predates retention too: restoring it onto this log must
	// refuse rather than replay from a hole.
	if err := coord.Restore(blob); err == nil || !strings.Contains(err.Error(), "retention") {
		t.Fatalf("restore below retention: err = %v, want a retention refusal", err)
	}

	// The runbook heal: bring the blob up on a fresh log (RebaseEmpty anchors
	// it at the blob's position) and refeed the stream from the cut. The blob
	// was taken at event 100, so the coordinator replays nothing and the
	// stream resumes there.
	freshLog, err := wal.Open(t.TempDir(), wal.Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { freshLog.Close() })
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = "http://" + w.addr
	}
	coordB, err := cluster.New(cluster.Config{Workers: urls, Log: freshLog})
	if err != nil {
		t.Fatal(err)
	}
	if err := coordB.Restore(blob); err != nil {
		t.Fatalf("restore onto fresh log: %v", err)
	}
	if freshLog.Events() != 100 {
		t.Fatalf("fresh log not rebased to the blob position: %d events, want 100", freshLog.Events())
	}
	feed(t, coordB, s[100:])
	if got := quiescedEstimate(t, coordB).Estimate; got != want {
		t.Fatalf("healed estimate %v, uninterrupted ensemble %v", got, want)
	}
}

// TestWALModeBadBodyLeavesLogUntouched: in log mode the coordinator decodes
// before it logs, so a corrupt body must reject as a client error with the
// log position unmoved and every worker still serving.
func TestWALModeBadBodyLeavesLogUntouched(t *testing.T) {
	s := testStream(t, 61, 200)
	budgets := shard.SplitBudget(300, 3)
	_, coord, log := walFleet(t, budgets, []int64{41, 42, 43}, wal.Options{})
	feed(t, coord, s[:100])
	end, events := log.End(), log.Events()

	if _, err := coord.IngestBytes([]byte("not a stream\n")); !errors.Is(err, cluster.ErrBadStream) {
		t.Fatalf("bad body: err = %v, want ErrBadStream", err)
	}
	if log.End() != end || log.Events() != events {
		t.Fatalf("bad body moved the log: %d/%d, had %d/%d", log.End(), log.Events(), end, events)
	}
	h := coord.Health()
	for i, wh := range h.WorkersDetail {
		if !wh.Consistent || wh.Lagging {
			t.Fatalf("bad body damaged worker %d: %+v", i, wh)
		}
	}
	if err := coord.SubmitBatch(s[100:150]); err != nil {
		t.Fatalf("valid ingest after bad body: %v", err)
	}
}

// TestSnapshotRefusesLaggingWorker: a cluster blob must describe one stream
// position; while a worker lags the log, snapshotting would bake in a
// position the lagger has not reached — refuse until the fleet converges.
func TestSnapshotRefusesLaggingWorker(t *testing.T) {
	s := testStream(t, 67, 300)
	budgets := shard.SplitBudget(300, 3)
	workers, coord, _ := walFleet(t, budgets, []int64{51, 52, 53}, wal.Options{})
	feed(t, coord, s[:100])

	workers[0].kill()
	feed(t, coord, s[100:200])
	if _, err := coord.Snapshot(); err == nil {
		t.Fatal("snapshot with a lagging worker must fail")
	}

	workers[0].restart(t)
	if err := coord.CatchUp(); err != nil {
		t.Fatalf("catch-up: %v", err)
	}
	if _, err := coord.Snapshot(); err != nil {
		t.Fatalf("snapshot after heal: %v", err)
	}
}

// TestIngestDecodesBinaryInLogMode: the logged path re-frames whatever body
// arrives, so binary ingest through IngestBytes must land in the log and on
// the workers identically to SubmitBatch.
func TestIngestDecodesBinaryInLogMode(t *testing.T) {
	s := testStream(t, 71, 256)
	budgets := shard.SplitBudget(300, 3)
	_, coord, log := walFleet(t, budgets, []int64{91, 92, 93}, wal.Options{})

	var buf strings.Builder
	if err := stream.WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	res, err := coord.IngestBytes([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != len(s) {
		t.Fatalf("accepted %d of %d", res.Accepted, len(s))
	}
	if log.Events() != int64(len(s)) {
		t.Fatalf("log holds %d events, want %d", log.Events(), len(s))
	}
	est := quiescedEstimate(t, coord)
	if est.Processed != int64(len(s)) {
		t.Fatalf("processed %d, want %d", est.Processed, len(s))
	}
}
