// Partitioned-mode suite: the coordinator routes each edge to the workers
// owning its endpoints, and the visibility-corrected sum of the fleet's
// estimates must be bit-identical to independently routed reference counters
// — through failures, per-partition log replay, and snapshot restore. The
// ack-ambiguity tests live here too: delivery faults injected between a
// worker's apply and its ack must never double-apply, in either ingest mode.
package cluster_test

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	wsd "repro"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/wal"
	"repro/internal/weights"
	"repro/internal/xrand"
)

// partitionedFleet spins n single-shard triangle workers configured as
// partitions 0..n-1 of an n-way fleet and returns their URLs plus servers.
func partitionedFleet(t *testing.T, budgets []int, seeds []int64) ([]string, []*httptest.Server) {
	t.Helper()
	urls := make([]string, len(budgets))
	servers := make([]*httptest.Server, len(budgets))
	for i := range budgets {
		srv, err := serve.New(serve.Config{
			Pattern:        wsd.TrianglePattern,
			M:              budgets[i],
			Shards:         1,
			Options:        []wsd.Option{wsd.WithSeed(seeds[i])},
			PartitionIndex: i,
			PartitionCount: len(budgets),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { srv.Close() })
		urls[i] = ts.URL
		servers[i] = ts
	}
	return urls, servers
}

// routedReference builds the ground truth a partitioned fleet must reproduce
// bit for bit: one counter per partition with the worker's exact
// configuration (same budget, same seed sequence, same ownership weighting),
// fed only its routed substream in stream order.
func routedReference(t *testing.T, budgets []int, seeds []int64, s stream.Stream) []*core.Counter {
	t.Helper()
	n := len(budgets)
	refs := make([]*core.Counter, n)
	for i := range refs {
		c, err := core.New(core.Config{
			M:            budgets[i],
			Pattern:      wsd.TrianglePattern,
			Weight:       weights.GPSDefault(),
			Rng:          xrand.NewSequence(seeds[i], 0),
			SkipTemporal: true,
			EventWeight:  partition.EventWeight(i, n),
		})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = c
	}
	for _, ev := range s {
		a, b := partition.Owners(ev.Edge, n)
		refs[a].Process(ev)
		if b != a {
			refs[b].Process(ev)
		}
	}
	return refs
}

// referenceSum folds the routed reference counters exactly as the coordinator
// does: summation in fleet order, then the Beta visibility correction.
func referenceSum(refs []*core.Counter) float64 {
	sum := 0.0
	for _, c := range refs {
		sum += c.Estimate()
	}
	return sum / partition.Beta(wsd.TrianglePattern, len(refs))
}

// TestPartitionedClusterMatchesRoutedReference is the partitioned smoke
// check: a partitioned coordinator over 3 workers must produce exactly the
// estimate of three in-process counters fed the same routed substreams — the
// distribution across processes (and the HTTP hop, the stamping, the Sum
// combiner, the Beta division) must change nothing.
func TestPartitionedClusterMatchesRoutedReference(t *testing.T) {
	s := testStream(t, 31, 900)
	budgets := shard.SplitBudget(900, 3)
	seeds := []int64{41, 42, 43}
	urls, _ := partitionedFleet(t, budgets, seeds)
	coord, err := cluster.New(cluster.Config{Workers: urls, Partitioned: true})
	if err != nil {
		t.Fatal(err)
	}
	if !coord.Partitioned() {
		t.Fatal("coordinator does not report partitioned mode")
	}
	feed(t, coord, s)
	est := quiescedEstimate(t, coord)

	refs := routedReference(t, budgets, seeds, s)
	if want := referenceSum(refs); est.Estimate != want {
		t.Fatalf("partitioned cluster estimate %v, routed reference %v", est.Estimate, want)
	}
	var wantProcessed int64
	for _, ev := range s {
		a, b := partition.Owners(ev.Edge, 3)
		wantProcessed++
		if b != a {
			wantProcessed++
		}
	}
	if est.Processed != wantProcessed {
		t.Fatalf("processed %d deliveries, want %d (sum over partitions)", est.Processed, wantProcessed)
	}
	if est.Gathered != 3 || est.Degraded {
		t.Fatalf("partitioned read gathered %d, degraded=%v; need the whole fleet", est.Gathered, est.Degraded)
	}
}

// TestPartitionedSumCombineUnbiased checks the statistical contract end to
// end at serving scale: the Beta-corrected sum over generously budgeted
// partitions must land near the exact triangle count. (The acceptance-bound
// check on the harness streams lives in the root acceptance suite; this is
// the in-package guard.)
func TestPartitionedSumCombineUnbiased(t *testing.T) {
	s := testStream(t, 37, 1200)
	// Budget above the insertion count: each partition computes its
	// ownership-weighted share exactly, so the only estimation error left is
	// the hash-partition visibility approximation Beta corrects for.
	budgets := []int{2000, 2000, 2000}
	seeds := []int64{7, 8, 9}
	urls, _ := partitionedFleet(t, budgets, seeds)
	coord, err := cluster.New(cluster.Config{Workers: urls, Partitioned: true})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coord, s)
	est := quiescedEstimate(t, coord)

	ex := wsd.NewExactCounter(wsd.TrianglePattern)
	for _, ev := range s {
		ex.Process(ev)
	}
	exact := ex.Estimate()
	if exact < 50 {
		t.Fatalf("test stream has only %.0f triangles; too few to check unbiasedness", exact)
	}
	if mre := math.Abs(est.Estimate-exact) / exact; mre > 0.25 {
		t.Fatalf("partitioned estimate %.1f vs exact %.1f (relative error %.3f); the Beta correction is off", est.Estimate, exact, mre)
	}
}

// partitionedWALFleet builds n restartable partitioned workers and a
// partitioned coordinator with one write-ahead log per partition.
func partitionedWALFleet(t *testing.T, budgets []int, seeds []int64, opts wal.Options) ([]*restartableWorker, *cluster.Coordinator, []*wal.Log) {
	t.Helper()
	n := len(budgets)
	workers := make([]*restartableWorker, n)
	urls := make([]string, n)
	logs := make([]*wal.Log, n)
	for i := range budgets {
		workers[i] = newRestartablePartitionWorker(t, budgets[i], seeds[i], i, n)
		urls[i] = "http://" + workers[i].addr
		lg, err := wal.Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lg.Close() })
		logs[i] = lg
	}
	coord, err := cluster.New(cluster.Config{Workers: urls, Partitioned: true, Logs: logs})
	if err != nil {
		t.Fatal(err)
	}
	return workers, coord, logs
}

// newRestartablePartitionWorker is newRestartableWorker with a partition
// slot: the restarted-empty worker keeps its slot, as a redeployed pod would.
func newRestartablePartitionWorker(t *testing.T, budget int, seed int64, idx, count int) *restartableWorker {
	t.Helper()
	w := newRestartableWorker(t, budget, seed)
	w.partitionIndex, w.partitionCount = idx, count
	// Cycle once so the running server carries the slot from the first
	// request on (the fields land on restart).
	w.kill()
	w.restart(t)
	return w
}

// TestPartitionedWorkerKillRestartCatchUpIdempotent kills one partition
// mid-stream and restarts it empty: per-partition log replay alone must
// rebuild exactly the routed substream, and the healed fleet's estimate must
// be bit-identical to the uninterrupted reference. The stamps make the heal
// safe to race: replay chunks arriving around live traffic are deduplicated
// by position, never double-applied.
func TestPartitionedWorkerKillRestartCatchUpIdempotent(t *testing.T) {
	s := testStream(t, 53, 700)
	budgets := shard.SplitBudget(700, 3)
	seeds := []int64{11, 12, 13}
	workers, coord, _ := partitionedWALFleet(t, budgets, seeds, wal.Options{SegmentBytes: 1 << 20})

	cut := len(s) / 2
	feed(t, coord, s[:cut])
	workers[1].kill()
	// The fleet refuses ingest below full strength the moment the dead
	// partition is noticed (its share has nowhere sound to go), so push one
	// batch to trip the failure detector, then bring the worker back.
	if err := coord.SubmitBatch(s[cut : cut+32]); err == nil {
		// The dead worker may not own any endpoint in this batch; that is
		// legitimate — routing simply had nothing for it.
		n := 0
		for _, ev := range s[cut : cut+32] {
			a, b := partition.Owners(ev.Edge, 3)
			if a == 1 || b == 1 {
				n++
			}
		}
		if n > 0 {
			t.Fatalf("submit with a dead partition owning %d events unexpectedly succeeded", n)
		}
	}
	workers[1].restart(t)
	if err := coord.CatchUp(); err != nil {
		t.Fatalf("catch-up after restart: %v", err)
	}
	feed(t, coord, s[cut+32:])
	// No re-delivery of the errored batch: it was appended to every partition
	// log before fan-out and applied by the healthy partitions, so the replay
	// above completed the dead partition's share and the fleet has seen all of
	// s exactly once.
	est := quiescedEstimate(t, coord)

	refs := routedReference(t, budgets, seeds, s)
	if want := referenceSum(refs); est.Estimate != want {
		t.Fatalf("healed partitioned estimate %v, uninterrupted reference %v", est.Estimate, want)
	}
}

// TestPartitionedSnapshotRestoreReplaysTail checks restore-from-blob plus
// per-partition tail replay: a blob taken mid-stream restores onto logs that
// have since grown, each partition's mark seeds its ack, and replay carries
// every partition independently to its own log end — bit-identical to the
// uninterrupted reference.
func TestPartitionedSnapshotRestoreReplaysTail(t *testing.T) {
	s := testStream(t, 59, 700)
	budgets := shard.SplitBudget(700, 3)
	seeds := []int64{21, 22, 23}
	workers, coord, logs := partitionedWALFleet(t, budgets, seeds, wal.Options{SegmentBytes: 1 << 20})

	cut := len(s) / 2
	feed(t, coord, s[:cut])
	blob, err := coord.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coord, s[cut:])
	endEvents := make([]int64, len(logs))
	for i, lg := range logs {
		endEvents[i] = lg.Events()
	}

	// Lose a worker's state entirely, then restore the mid-stream blob onto
	// the whole fleet: the per-partition marks position every worker at the
	// blob, and replay must finish the job per partition.
	workers[2].kill()
	workers[2].restart(t)
	if err := coord.Restore(blob); err != nil {
		t.Fatalf("restore mid-stream blob: %v", err)
	}
	est := quiescedEstimate(t, coord)
	refs := routedReference(t, budgets, seeds, s)
	if want := referenceSum(refs); est.Estimate != want {
		t.Fatalf("restored partitioned estimate %v, uninterrupted reference %v", est.Estimate, want)
	}
	for i, lg := range logs {
		if lg.Events() != endEvents[i] {
			t.Fatalf("partition %d log moved from %d to %d events across restore", i, endEvents[i], lg.Events())
		}
	}
}

// TestPartitionedRestoreRefusesModeMismatch pins the blob/mode cross-checks:
// a broadcast blob must not restore onto a partitioned coordinator (worker
// blobs would carry whole-stream samples into share-weighted counters) nor
// the reverse.
func TestPartitionedRestoreRefusesModeMismatch(t *testing.T) {
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{1, 2, 3}
	purls, _ := partitionedFleet(t, budgets, seeds)
	pcoord, err := cluster.New(cluster.Config{Workers: purls, Partitioned: true})
	if err != nil {
		t.Fatal(err)
	}
	burls, _ := testFleet(t, budgets, seeds)
	bcoord, err := cluster.New(cluster.Config{Workers: burls})
	if err != nil {
		t.Fatal(err)
	}
	pblob, err := pcoord.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bblob, err := bcoord.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := pcoord.Restore(bblob); err == nil || !strings.Contains(err.Error(), "broadcast") {
		t.Fatalf("partitioned coordinator accepted a broadcast blob (err=%v)", err)
	}
	if err := bcoord.Restore(pblob); err == nil || !strings.Contains(err.Error(), "partitioned") {
		t.Fatalf("broadcast coordinator accepted a partitioned blob (err=%v)", err)
	}
}

// TestPartitionedHealthVerifiesSlots pins the deployment cross-checks in
// /healthz: a partitioned coordinator over workers with no partition slots
// (or the wrong ones) must degrade, and a broadcast coordinator over
// partition-weighted workers must degrade — both silently bias every read if
// allowed to show green.
func TestPartitionedHealthVerifiesSlots(t *testing.T) {
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{1, 2, 3}

	// Unpartitioned workers under a partitioned coordinator.
	burls, _ := testFleet(t, budgets, seeds)
	pcoord, err := cluster.New(cluster.Config{Workers: burls, Partitioned: true})
	if err != nil {
		t.Fatal(err)
	}
	h := pcoord.Health()
	if h.Status != "degraded" {
		t.Fatalf("partitioned coordinator over slotless workers reports %q, want degraded", h.Status)
	}
	if !h.Partitioned {
		t.Fatal("health does not report partitioned mode")
	}
	found := false
	for _, wd := range h.WorkersDetail {
		if strings.Contains(wd.Error, "not configured for partitioned ingest") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no worker detail names the missing partition slot: %+v", h.WorkersDetail)
	}

	// Partition-weighted workers under a broadcast coordinator.
	purls, _ := partitionedFleet(t, budgets, seeds)
	bcoord, err := cluster.New(cluster.Config{Workers: purls})
	if err != nil {
		t.Fatal(err)
	}
	if h := bcoord.Health(); h.Status != "degraded" {
		t.Fatalf("broadcast coordinator over partitioned workers reports %q, want degraded", h.Status)
	}

	// The matched deployment is green.
	pcoord2, err := cluster.New(cluster.Config{Workers: purls, Partitioned: true})
	if err != nil {
		t.Fatal(err)
	}
	if h := pcoord2.Health(); h.Status != "ok" {
		t.Fatalf("matched partitioned deployment reports %q, want ok: %+v", h.Status, h.WorkersDetail)
	}
}

// TestPartitionedConfigValidation pins New's partitioned-mode rules.
func TestPartitionedConfigValidation(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	lg := func() *wal.Log {
		l, err := wal.Open(t.TempDir(), wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		return l
	}
	cases := []struct {
		name string
		cfg  cluster.Config
		want string
	}{
		{"combiner", cluster.Config{Workers: urls, Partitioned: true, Combiner: func(xs []float64) float64 { return 0 }}, "do not set Combiner"},
		{"quorum", cluster.Config{Workers: urls, Partitioned: true, Quorum: 2}, "whole fleet"},
		{"single-log", cluster.Config{Workers: urls, Partitioned: true, Log: lg()}, "set Logs"},
		{"short-logs", cluster.Config{Workers: urls, Partitioned: true, Logs: []*wal.Log{lg()}}, "index-aligned"},
		{"nil-log-entry", cluster.Config{Workers: urls, Partitioned: true, Logs: []*wal.Log{lg(), nil, lg()}}, "is nil"},
		{"logs-on-broadcast", cluster.Config{Workers: urls, Logs: []*wal.Log{lg(), lg(), lg()}}, "partitioned mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cluster.New(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New = %v, want error containing %q", err, tc.want)
			}
		})
	}
	// Quorum equal to the fleet size is explicitly allowed (it is what the
	// mode pins anyway).
	if _, err := cluster.New(cluster.Config{Workers: urls, Partitioned: true, Quorum: 3}); err != nil {
		t.Fatalf("fleet-size quorum rejected: %v", err)
	}
}

// duplicatingTransport delivers one armed /ingest request to its worker
// twice — the wire-level duplicate behind the ack ambiguity: a retry or
// replay racing a delivery that already applied. The response returned to
// the coordinator is the second (duplicate) delivery's, as a retransmit's
// would be.
type duplicatingTransport struct {
	base   http.RoundTripper
	mu     sync.Mutex
	target string // host to duplicate against
	armed  bool
	fired  bool
}

func (d *duplicatingTransport) arm(host string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.target, d.armed = host, true
}

func (d *duplicatingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d.mu.Lock()
	fire := d.armed && req.URL.Path == "/ingest" && req.URL.Host == d.target
	if fire {
		d.armed, d.fired = false, true
	}
	d.mu.Unlock()
	if !fire {
		return d.base.RoundTrip(req)
	}
	first, err := d.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	dup := req.Clone(req.Context())
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	dup.Body = body
	return d.base.RoundTrip(dup)
}

// TestClusterAckAmbiguityDelayedDuplicate injects a duplicated delivery on
// the broadcast log path: one batch reaches a worker twice. Without
// position-stamped idempotence the worker double-applies and drifts from the
// fleet silently (it still acks); with it, the duplicate is skipped, the
// reply accounts for it, and the final estimate is bit-identical to an
// uninterrupted ensemble.
func TestClusterAckAmbiguityDelayedDuplicate(t *testing.T) {
	s := testStream(t, 61, 600)
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{31, 32, 33}
	workers := make([]*restartableWorker, 3)
	urls := make([]string, 3)
	for i := range workers {
		workers[i] = newRestartableWorker(t, budgets[i], seeds[i])
		urls[i] = "http://" + workers[i].addr
	}
	lg, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lg.Close() })
	dt := &duplicatingTransport{base: http.DefaultTransport}
	coord, err := cluster.New(cluster.Config{Workers: urls, Log: lg, Client: &http.Client{Transport: dt}})
	if err != nil {
		t.Fatal(err)
	}

	cut := len(s) / 2
	feed(t, coord, s[:cut])
	dt.arm(workers[1].addr)
	feed(t, coord, s[cut:])
	dt.mu.Lock()
	fired := dt.fired
	dt.mu.Unlock()
	if !fired {
		t.Fatal("fault never fired; the test exercised nothing")
	}

	ref := referenceEnsemble(t, budgets, seeds)
	if err := ref.SubmitBatch(s); err != nil {
		t.Fatal(err)
	}
	est := quiescedEstimate(t, coord)
	if want := ref.Estimate(); est.Estimate != want {
		t.Fatalf("estimate after duplicated delivery %v, uninterrupted reference %v", est.Estimate, want)
	}
}

// lostResponseTransport delivers one armed /ingest request normally but
// reports a transport error to the caller — the other face of the ack
// ambiguity: the worker applied, the coordinator cannot know.
type lostResponseTransport struct {
	base   http.RoundTripper
	mu     sync.Mutex
	target string
	armed  bool
	fired  bool
}

func (l *lostResponseTransport) arm(host string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.target, l.armed = host, true
}

func (l *lostResponseTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	l.mu.Lock()
	fire := l.armed && req.URL.Path == "/ingest" && req.URL.Host == l.target
	if fire {
		l.armed, l.fired = false, true
	}
	l.mu.Unlock()
	resp, err := l.base.RoundTrip(req)
	if !fire || err != nil {
		return resp, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil, fmt.Errorf("injected: connection lost between apply and ack")
}

// TestClusterAckAmbiguityTimeoutAfterApply injects the apply-then-lost-ack
// fault: the worker applies a broadcast but the coordinator sees a transport
// error and marks it lagging at its stale ack. The heal replays the tail
// from that stale position — stamped, so the events the worker already holds
// come back as duplicates instead of double-applying — and the healed fleet
// is bit-identical to an uninterrupted ensemble.
func TestClusterAckAmbiguityTimeoutAfterApply(t *testing.T) {
	s := testStream(t, 67, 600)
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{51, 52, 53}
	workers := make([]*restartableWorker, 3)
	urls := make([]string, 3)
	for i := range workers {
		workers[i] = newRestartableWorker(t, budgets[i], seeds[i])
		urls[i] = "http://" + workers[i].addr
	}
	lg, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lg.Close() })
	lt := &lostResponseTransport{base: http.DefaultTransport}
	coord, err := cluster.New(cluster.Config{Workers: urls, Log: lg, Client: &http.Client{Transport: lt}})
	if err != nil {
		t.Fatal(err)
	}

	cut := len(s) / 2
	feed(t, coord, s[:cut])
	lt.arm(workers[2].addr)
	// This batch applies on worker 2 but its ack is lost; the coordinator
	// must treat the outcome as unknown (lagging), not as applied.
	if err := coord.SubmitBatch(s[cut : cut+64]); err != nil && !errors.Is(err, cluster.ErrNoQuorum) {
		t.Fatalf("submit through fault: %v", err)
	}
	lt.mu.Lock()
	fired := lt.fired
	lt.mu.Unlock()
	if !fired {
		t.Fatal("fault never fired; the test exercised nothing")
	}
	// Heal explicitly (the broadcast path would after backoff): the replay
	// covers the ambiguous batch again, and stamping resolves the ambiguity
	// on the worker instead of in the coordinator's guesswork.
	if err := coord.CatchUp(); err != nil {
		t.Fatalf("catch-up over ambiguous ack: %v", err)
	}
	feed(t, coord, s[cut+64:])

	ref := referenceEnsemble(t, budgets, seeds)
	if err := ref.SubmitBatch(s); err != nil {
		t.Fatal(err)
	}
	est := quiescedEstimate(t, coord)
	if want := ref.Estimate(); est.Estimate != want {
		t.Fatalf("estimate after lost ack %v, uninterrupted reference %v", est.Estimate, want)
	}
}

// TestRetentionPinnedWhenFleetInconsistent is the regression test for the
// min-ack retention bug: when no consistent worker remains, the fleet's acks
// are stale bookmarks with no live state behind them, and truncating to their
// minimum can retire exactly the tail a snapshot restore needs. The flow that
// exposes it: Restore advances every ack to the log end *without* truncating
// (only the submit path truncates behind acks), so once the fleet then goes
// inconsistent, min-ack reads "log end" — the buggy coordinator truncated
// there and turned a healable outage into data loss.
func TestRetentionPinnedWhenFleetInconsistent(t *testing.T) {
	s := testStream(t, 71, 600)
	budgets := shard.SplitBudget(600, 2)
	seeds := []int64{81, 82}
	workers := make([]*restartableWorker, 2)
	urls := make([]string, 2)
	for i := range workers {
		workers[i] = newRestartableWorker(t, budgets[i], seeds[i])
		urls[i] = "http://" + workers[i].addr
	}
	// Tiny segments so the stream seals into segments retention could
	// actually remove, and quorum 1 so the fleet keeps ingesting (and
	// logging) past a dead worker.
	lg, err := wal.Open(t.TempDir(), wal.Options{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lg.Close() })
	coord, err := cluster.New(cluster.Config{Workers: urls, Log: lg, Quorum: 1})
	if err != nil {
		t.Fatal(err)
	}

	cut := len(s) / 2
	feed(t, coord, s[:cut])
	blob, err := coord.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// One worker dies; quorum 1 keeps the fleet ingesting, and the dead
	// worker's ack — stuck at the blob's position — pins retention below it.
	workers[1].kill()
	feed(t, coord, s[cut:])
	// Bring the dead worker back empty and restore the mid-stream blob onto
	// the whole fleet: Restore seeds every ack at the blob's position and
	// replays both workers to the log end — advancing the acks with NO
	// truncation, which is exactly the state the bug mistook for safety.
	workers[1].restart(t)
	if err := coord.Restore(blob); err != nil {
		t.Fatalf("restore mid-stream blob: %v", err)
	}
	baseBefore := lg.Base()
	if baseBefore >= lg.End() {
		t.Fatalf("log base %d already at end %d; the test retained no tail to protect", baseBefore, lg.End())
	}

	// Now lose the whole fleet to out-of-band state: both workers restart
	// empty and take a few events that align with no logged frame boundary,
	// so the next probe marks every worker inconsistent.
	for _, w := range workers {
		w.kill()
		w.restart(t)
		resp, err := http.Post("http://"+w.addr+"/ingest", "text/plain", strings.NewReader("+ 1 2\n+ 2 3\n+ 1 3\n"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if err := coord.CatchUp(); err == nil || !errors.Is(err, cluster.ErrCatchUpIncomplete) {
		t.Fatalf("catch-up over an out-of-band fleet = %v, want ErrCatchUpIncomplete", err)
	}
	// The acks still read "log end", but no consistent state backs them:
	// truncating to their minimum here (the bug) retires the whole tail above
	// the blob and makes the restore below impossible.
	if got := lg.Base(); got != baseBefore {
		t.Fatalf("retention advanced from %d to %d on the stale acks of an all-inconsistent fleet; the restore tail is gone", baseBefore, got)
	}

	// The pinned tail is what makes the heal possible: restore the blob and
	// let replay finish, then verify against the uninterrupted reference.
	if err := coord.Restore(blob); err != nil {
		t.Fatalf("restore after pinned retention: %v", err)
	}
	ref := referenceEnsemble(t, budgets, seeds)
	if err := ref.SubmitBatch(s); err != nil {
		t.Fatal(err)
	}
	est := quiescedEstimate(t, coord)
	if want := ref.Estimate(); est.Estimate != want {
		t.Fatalf("healed estimate %v, uninterrupted reference %v", est.Estimate, want)
	}
}
