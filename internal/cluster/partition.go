package cluster

import (
	"fmt"
	"time"

	"repro/internal/partition"
	"repro/internal/stream"
)

// submitPartitioned is the partitioned-mode ingest path: route each event to
// the owner(s) of its endpoints, then deliver each worker only its share.
// Caller holds the read lock.
//
// Ordering is the same global-order argument broadcast mode makes, per
// partition: bcastMu is held across the whole fan-out, so worker i receives
// its sub-batches in submission order, and an insert/delete pair can never
// arrive swapped. A two-owner edge is delivered to both owners; each weights
// its contributions by its owned-endpoint fraction (serve.Config's partition
// slot), so the fleet counts every completing edge with total weight one.
//
// With per-partition logs, each sub-batch is appended to its partition's log
// before any delivery (durable-then-deliver, as in broadcast log mode) and
// every delivery is stamped with its substream position, so duplicates and
// replays are idempotent. A failed delivery marks the worker lagging
// (healable by replay); without logs it marks it inconsistent.
func (c *Coordinator) submitPartitioned(evs []stream.Event) (IngestResult, error) {
	c.encMu.Lock()
	defer c.encMu.Unlock()
	res := IngestResult{Workers: len(c.workers)}
	n := len(c.workers)
	for i := range c.routeBufs {
		c.routeBufs[i] = c.routeBufs[i][:0]
	}
	for _, ev := range evs {
		a, b := partition.Owners(ev.Edge, n)
		c.routeBufs[a] = append(c.routeBufs[a], ev)
		if b != a {
			c.routeBufs[b] = append(c.routeBufs[b], ev)
		}
	}
	c.bcastMu.Lock()
	defer c.bcastMu.Unlock()
	if c.logs != nil {
		// Heal first, as in broadcast log mode: a lagging partition past its
		// backoff rejoins before this batch.
		c.healLagging(false)
	}
	if live := c.eligible(); len(live) < c.quorum {
		// The quorum is the fleet size (New pins it), so any missing partition
		// blocks ingest: events for its vertices have nowhere sound to go.
		return res, fmt.Errorf("%w: %d serving of %d (partitioned ingest needs every partition)", ErrNoQuorum, len(live), len(c.workers))
	}
	// Durable before delivered: append every non-empty share to its partition
	// log, recording each log's pre-append position as the delivery stamp.
	startEvents := make([]int64, n)
	endPos := make([]uint64, n)
	endEvents := make([]int64, n)
	if c.logs != nil {
		for i, lg := range c.logs {
			sub := c.routeBufs[i]
			startEvents[i] = lg.Events()
			for lo := 0; lo < len(sub); lo += stream.MaxFrameEvents {
				hi := lo + stream.MaxFrameEvents
				if hi > len(sub) {
					hi = len(sub)
				}
				if _, err := lg.Append(sub[lo:hi]); err != nil {
					// Earlier partitions' logs already hold their shares but no
					// worker has seen them: mark those workers lagging so replay
					// delivers the durable tail, and report the failure.
					for j := 0; j < i; j++ {
						if len(c.routeBufs[j]) > 0 {
							c.workers[j].lagging.Store(true)
						}
					}
					return res, fmt.Errorf("cluster: partition %d write-ahead log append: %w", i, err)
				}
			}
			endPos[i], endEvents[i] = lg.End(), lg.Events()
		}
	}
	errs := fanout(c.workers, func(i int, w *workerRef) error {
		sub := c.routeBufs[i]
		if len(sub) == 0 {
			return nil // no share this batch; the worker's position is unchanged
		}
		body, err := encodeInto(&c.partBufs[i], sub)
		if err != nil {
			return err
		}
		var reply struct {
			Accepted  int `json:"accepted"`
			Duplicate int `json:"duplicate"`
		}
		stamp := int64(-1)
		if c.logs != nil {
			stamp = startEvents[i]
		}
		if err := c.postStamped(w, "/ingest", body, stamp, &reply); err != nil {
			return err
		}
		if reply.Accepted+reply.Duplicate != len(sub) {
			return fmt.Errorf("applied %d of %d routed events (%d duplicate)", reply.Accepted, len(sub), reply.Duplicate)
		}
		return nil
	})
	var firstErr error
	applied := 0
	for i, err := range errs {
		w := c.workers[i]
		if err == nil {
			applied++
			if c.logs != nil {
				w.acked.Store(endPos[i])
				w.ackedEvents.Store(endEvents[i])
			}
			continue
		}
		if c.logs != nil {
			// The share is on the worker's partition log; replay heals it.
			w.lagging.Store(true)
			w.lastCatchUp.Store(time.Now().UnixNano())
		} else {
			// Without durability a missed share is unrecoverable: the worker's
			// sample no longer summarizes its substream.
			w.inconsistent.Store(true)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("worker %s: %w", w.url, err)
		}
	}
	res.Accepted = len(evs)
	res.Applied = applied
	if c.logs != nil {
		c.truncateToMinAck()
	}
	if applied < c.quorum {
		return res, fmt.Errorf("%w: %d of %d partitions applied their share: %v", ErrNoQuorum, applied, len(c.workers), firstErr)
	}
	return res, nil
}
