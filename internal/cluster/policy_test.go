package cluster_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	wsd "repro"

	"repro/internal/cluster"
	"repro/internal/pattern"
	"repro/internal/policy"
	"repro/internal/serve"
	"repro/internal/shard"
)

// clusterArtifact mints a trained-artifact stand-in (the deterministic
// reference policy, bias shifted by delta) for cluster swap tests.
func clusterArtifact(t *testing.T, pat pattern.Kind, delta float64) ([]byte, string) {
	t.Helper()
	pol := policy.Reference(pat)
	pol.B += delta
	art, err := policy.New(pat, pol, policy.Provenance{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return raw, art.ID()
}

// TestClusterPolicySwapUniform: a healthy-fleet swap must land the artifact
// on every worker atomically (from the coordinator's view: excluded from the
// broadcast stream, applied fleet-wide or not at all), after which /healthz
// aggregation and GET /policy both report one policy for the whole cluster.
func TestClusterPolicySwapUniform(t *testing.T) {
	s := testStream(t, 71, 400)
	budgets := shard.SplitBudget(600, 3)
	urls, _ := testFleet(t, budgets, []int64{51, 52, 53})
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coord, s[:200])

	h := coord.Health()
	if h.Policy != "heuristic" {
		t.Fatalf("pre-swap fleet policy %q, want heuristic", h.Policy)
	}

	raw, id := clusterArtifact(t, wsd.TrianglePattern, 0)
	if err := coord.SwapPolicy(raw); err != nil {
		t.Fatalf("healthy-fleet swap: %v", err)
	}
	h = coord.Health()
	if h.Status != "ok" || h.Policy != id {
		t.Fatalf("post-swap health: status %s policy %q, want ok running %s", h.Status, h.Policy, id)
	}
	for _, wh := range h.WorkersDetail {
		if wh.Policy != id {
			t.Fatalf("worker %s reports policy %q, want %s", wh.URL, wh.Policy, id)
		}
	}

	status, err := coord.PolicyStatus()
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Policy string `json:"policy"`
		Source string `json:"source"`
	}
	if err := json.Unmarshal(status, &st); err != nil {
		t.Fatal(err)
	}
	if st.Policy != id || st.Source != "swap" {
		t.Fatalf("PolicyStatus %s, want policy %s from a swap", status, id)
	}

	// The swapped fleet keeps ingesting and reading.
	feed(t, coord, s[200:])
	est := quiescedEstimate(t, coord)
	if est.Gathered != 3 || est.Processed != int64(len(s)) {
		t.Fatalf("post-swap read: %+v", est)
	}
}

// TestClusterPolicySwapBitIdenticalAcrossRestore is the cluster-level
// lifecycle acceptance check: a fleet hot-swapped mid-stream, snapshotted,
// restored onto brand-new workers, and resumed must end exactly equal to a
// fleet that swapped at the same position and ran uninterrupted — the worker
// snapshots carry the policy through the restore.
func TestClusterPolicySwapBitIdenticalAcrossRestore(t *testing.T) {
	s := testStream(t, 73, 600)
	c1, c2 := len(s)/3, 2*len(s)/3
	budgets := shard.SplitBudget(600, 3)
	seeds := []int64{61, 62, 63}
	raw, _ := clusterArtifact(t, wsd.TrianglePattern, 0.05)

	// Fleet A: swap after the prefix, never interrupted.
	urlsA, _ := testFleet(t, budgets, seeds)
	coordA, err := cluster.New(cluster.Config{Workers: urlsA})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coordA, s[:c1])
	if err := coordA.SwapPolicy(raw); err != nil {
		t.Fatal(err)
	}
	feed(t, coordA, s[c1:])
	want := quiescedEstimate(t, coordA).Estimate

	// Fleet B: identical run, checkpointed between swap and suffix.
	urlsB, _ := testFleet(t, budgets, seeds)
	coordB, err := cluster.New(cluster.Config{Workers: urlsB})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coordB, s[:c1])
	if err := coordB.SwapPolicy(raw); err != nil {
		t.Fatal(err)
	}
	feed(t, coordB, s[c1:c2])
	blob, err := coordB.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Fleet C: fresh workers with different boot seeds (the blob carries the
	// RNG state and the policy), restored and fed the remainder.
	urlsC, _ := testFleet(t, budgets, []int64{981, 982, 983})
	coordC, err := cluster.New(cluster.Config{Workers: urlsC})
	if err != nil {
		t.Fatal(err)
	}
	if err := coordC.Restore(blob); err != nil {
		t.Fatal(err)
	}
	feed(t, coordC, s[c2:])
	if got := quiescedEstimate(t, coordC).Estimate; got != want {
		t.Fatalf("restored swapped fleet estimate %v, uninterrupted %v (must be bit-identical)", got, want)
	}
}

// TestClusterPolicyPartialSwapAndHeal injects a mid-fanout fault: one worker
// refuses PUT /policy while the others apply it. The swap must come back as
// ErrPartialSwap with the refusing worker marked inconsistent (it now weighs
// events differently from the rest of the fleet); a retried swap is refused
// outright while the fleet is split; and a cluster Restore heals the fleet
// back to one weight function, after which the swap succeeds.
func TestClusterPolicyPartialSwapAndHeal(t *testing.T) {
	s := testStream(t, 79, 300)
	budgets := shard.SplitBudget(600, 3)

	urls := make([]string, 3)
	var failSwap atomic.Bool
	for i := 0; i < 3; i++ {
		srv, err := serve.New(serve.Config{Pattern: wsd.TrianglePattern, M: budgets[i], Shards: 1,
			Options: []wsd.Option{wsd.WithSeed(int64(71 + i))}})
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()
		if i == 2 {
			// The faulty worker: drops PUT /policy while the injection is
			// armed, serves everything else normally.
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if failSwap.Load() && r.Method == http.MethodPut && r.URL.Path == "/policy" {
					http.Error(w, "injected fault", http.StatusInternalServerError)
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		t.Cleanup(func() { srv.Close() })
		urls[i] = ts.URL
	}
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coord, s)
	blob, err := coord.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	raw, id := clusterArtifact(t, wsd.TrianglePattern, 0.1)
	failSwap.Store(true)
	err = coord.SwapPolicy(raw)
	if !errors.Is(err, cluster.ErrPartialSwap) {
		t.Fatalf("partial swap: err = %v, want ErrPartialSwap", err)
	}
	h := coord.Health()
	if h.Status != "degraded" || h.WorkersDetail[2].Consistent {
		t.Fatalf("after partial swap: status %s, worker 2 consistent=%v, want degraded and inconsistent", h.Status, h.WorkersDetail[2].Consistent)
	}
	if h.WorkersDetail[0].Policy != id || h.WorkersDetail[1].Policy != id {
		t.Fatalf("appliers report %q/%q, want %s", h.WorkersDetail[0].Policy, h.WorkersDetail[1].Policy, id)
	}

	// While the fleet is split, another swap is refused before any fanout.
	failSwap.Store(false)
	if err := coord.SwapPolicy(raw); err == nil || errors.Is(err, cluster.ErrPartialSwap) || !strings.Contains(err.Error(), "whole fleet") {
		t.Fatalf("swap on a split fleet: err = %v, want a whole-fleet refusal", err)
	}

	// Restore heals: every worker back on the pre-swap snapshot (heuristic),
	// consistent, uniform.
	if err := coord.Restore(blob); err != nil {
		t.Fatal(err)
	}
	h = coord.Health()
	if h.Status != "ok" || h.Policy != "heuristic" {
		t.Fatalf("after heal: status %s policy %q, want ok heuristic", h.Status, h.Policy)
	}

	// And with the fault gone, the swap lands fleet-wide.
	if err := coord.SwapPolicy(raw); err != nil {
		t.Fatalf("swap after heal: %v", err)
	}
	if h = coord.Health(); h.Status != "ok" || h.Policy != id {
		t.Fatalf("after healed swap: status %s policy %q, want ok %s", h.Status, h.Policy, id)
	}
}

// TestClusterPolicySwapDeadWorker: a swap that reaches a dead worker is a
// partial swap (the survivors applied, the dead worker's outcome is unknown),
// and the fleet stays split — degraded health, swap refusals — until healed.
func TestClusterPolicySwapDeadWorker(t *testing.T) {
	s := testStream(t, 83, 200)
	budgets := shard.SplitBudget(450, 3)
	urls, servers := testFleet(t, budgets, []int64{81, 82, 83})
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, coord, s)

	servers[1].Close()
	raw, _ := clusterArtifact(t, wsd.TrianglePattern, 0.2)
	if err := coord.SwapPolicy(raw); !errors.Is(err, cluster.ErrPartialSwap) {
		t.Fatalf("swap with a dead worker: err = %v, want ErrPartialSwap", err)
	}
	if h := coord.Health(); h.WorkersDetail[1].Consistent {
		t.Fatalf("dead worker still consistent after missed swap: %+v", h)
	}
	if err := coord.SwapPolicy(raw); err == nil || errors.Is(err, cluster.ErrPartialSwap) {
		t.Fatalf("retry on split fleet: err = %v, want an outright refusal", err)
	}
}

// TestClusterPolicyRejectedEverywhereIsClean: an artifact every worker
// rejects whole (wrong pattern for the deployment) must come back as a plain
// error — nothing applied anywhere, nobody marked inconsistent, the fleet
// still uniform.
func TestClusterPolicyRejectedEverywhereIsClean(t *testing.T) {
	budgets := shard.SplitBudget(450, 3)
	urls, _ := testFleet(t, budgets, []int64{91, 92, 93})
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := clusterArtifact(t, wsd.WedgePattern, 0)
	err = coord.SwapPolicy(raw)
	if err == nil || errors.Is(err, cluster.ErrPartialSwap) || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("wedge artifact on a triangle fleet: err = %v, want a clean rejection", err)
	}
	h := coord.Health()
	if h.Status != "ok" || h.Policy != "heuristic" {
		t.Fatalf("rejected swap moved the fleet: %+v", h)
	}
	// Garbage fails local validation before any fanout.
	if err := coord.SwapPolicy([]byte("not an artifact")); err == nil {
		t.Fatal("garbage artifact accepted")
	}
}

// TestClusterHealthFlagsPolicyMismatch: a worker swapped out-of-band (PUT
// /policy straight to the worker, bypassing the coordinator) weighs events
// differently from the fleet; /healthz aggregation must flag it instead of
// reporting green.
func TestClusterHealthFlagsPolicyMismatch(t *testing.T) {
	budgets := shard.SplitBudget(450, 3)
	urls, _ := testFleet(t, budgets, []int64{95, 96, 97})
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	if h := coord.Health(); h.Status != "ok" {
		t.Fatalf("pre-mismatch health: %+v", h)
	}

	raw, id := clusterArtifact(t, wsd.TrianglePattern, 0.3)
	req, err := http.NewRequest(http.MethodPut, urls[2]+"/policy", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct worker swap: %d: %s", resp.StatusCode, body)
	}

	h := coord.Health()
	if h.Status != "degraded" {
		t.Fatalf("split-policy fleet health %s, want degraded", h.Status)
	}
	wh := h.WorkersDetail[2]
	if wh.Policy != id || wh.Error == "" || !strings.Contains(wh.Error, "policy") {
		t.Fatalf("mismatched worker not flagged: %+v", wh)
	}
}

// TestClusterPolicyStatusQuorum: GET /policy aggregation needs a read quorum
// and refuses to answer for a fleet running two different policies.
func TestClusterPolicyStatusQuorum(t *testing.T) {
	budgets := shard.SplitBudget(450, 3)
	urls, servers := testFleet(t, budgets, []int64{41, 42, 43})
	coord, err := cluster.New(cluster.Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}

	raw, _ := clusterArtifact(t, wsd.TrianglePattern, 0.4)
	req, _ := http.NewRequest(http.MethodPut, urls[0]+"/policy", bytes.NewReader(raw))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := coord.PolicyStatus(); err == nil || !strings.Contains(err.Error(), "different policies") {
		t.Fatalf("split-policy status: err = %v, want a mismatch error", err)
	}

	servers[1].Close()
	servers[2].Close()
	if _, err := coord.PolicyStatus(); !errors.Is(err, cluster.ErrNoQuorum) {
		t.Fatalf("status below quorum: err = %v, want ErrNoQuorum", err)
	}
}
