// Package policy defines the versioned, self-describing artifact format that
// carries a trained WSD-L policy (Section IV's DDPG actor, flattened to
// rl.Policy) from wsdtrain to the serving surfaces: wsdserve boots from an
// artifact, PUT /policy hot-swaps one onto a live counter, and /policy/shadow
// scores a candidate against the live weight function before promotion.
//
// The wire format is a small binary envelope around a JSON payload:
//
//	magic "WSDP" | version (1 byte) | payload length (uvarint) | payload | sha256(payload)[:8]
//
// The payload names the pattern the policy was trained for, the state-vector
// dimension, the actor parameters, and the training provenance. Everything a
// consumer must check — magic, version, length, checksum, pattern, dimension,
// finiteness — is checked by Decode, which recovers with an error (never a
// panic) on arbitrary input. Encoding is deterministic: the same policy and
// provenance always produce the same bytes, so artifact identity can be
// pinned byte-for-byte in tests.
package policy

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/rl"
	"repro/internal/weights"
)

// Version is the current artifact format version.
const Version = 1

// magic opens every policy artifact.
var magic = []byte("WSDP")

// checksumLen is the number of sha256 bytes appended after the payload.
const checksumLen = 8

// maxPayloadBytes bounds the declared payload length so a corrupted uvarint
// cannot drive a huge allocation. Real payloads are a few hundred bytes.
const maxPayloadBytes = 1 << 20

// Provenance records where a policy came from: the training inputs that
// produced it. It is carried for inspection (GET /policy) and has no effect
// on sampling. Timestamps are deliberately absent so encoding stays
// deterministic.
type Provenance struct {
	// Seed is the training seed.
	Seed int64 `json:"seed"`
	// Iterations is the gradient-update budget requested.
	Iterations int `json:"iterations"`
	// M is the reservoir size used during training episodes.
	M int `json:"m"`
	// Streams is the number of training streams.
	Streams int `json:"streams"`
	// Updates is the number of gradient updates actually applied.
	Updates int `json:"updates,omitempty"`
	// Episodes is the number of training episodes played.
	Episodes int `json:"episodes,omitempty"`
}

// Artifact is a decoded policy artifact: a trained policy bound to the
// pattern it was trained for, plus provenance.
type Artifact struct {
	// Pattern is the subgraph pattern the policy was trained for. A serving
	// deployment refuses to run a policy against a different pattern: the
	// state-vector layout is pattern-sized, so a mismatch would feed the
	// actor garbage.
	Pattern pattern.Kind
	// Policy holds the actor parameters.
	Policy *rl.Policy
	// Provenance records the training inputs.
	Provenance Provenance
}

// payload is the JSON carried inside the envelope. The pattern travels by
// name so artifacts stay readable if the Kind enumeration is ever reordered.
type payload struct {
	Pattern    string     `json:"pattern"`
	Dim        int        `json:"dim"`
	W          []float64  `json:"w"`
	B          float64    `json:"b"`
	Provenance Provenance `json:"provenance"`
}

// New validates and binds a trained policy to its pattern.
func New(pat pattern.Kind, pol *rl.Policy, prov Provenance) (*Artifact, error) {
	a := &Artifact{Pattern: pat, Policy: pol, Provenance: prov}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Artifact) validate() error {
	if !a.Pattern.Valid() {
		return fmt.Errorf("policy: artifact names unknown pattern %d", int(a.Pattern))
	}
	if a.Policy == nil {
		return fmt.Errorf("policy: artifact has no policy")
	}
	if want := weights.VectorDim(a.Pattern.Size()); len(a.Policy.W) != want {
		return fmt.Errorf("policy: weight vector has %d entries; pattern %s needs %d (the MDP state dimension)", len(a.Policy.W), a.Pattern, want)
	}
	for i, w := range a.Policy.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("policy: weight %d is not finite", i)
		}
	}
	if math.IsNaN(a.Policy.B) || math.IsInf(a.Policy.B, 0) {
		return fmt.Errorf("policy: bias is not finite")
	}
	return nil
}

// ID returns the artifact's policy identity: a short content hash over the
// actor parameters. Two artifacts with equal parameters share an ID even if
// their provenance differs, and a snapshot-embedded policy recomputes the
// same ID — identity follows the weight function, not the training run.
func (a *Artifact) ID() string { return ParamsID(a.Policy.W, a.Policy.B) }

// ParamsID computes the short content hash over actor parameters: the first
// 12 hex digits of sha256 over the IEEE-754 bit patterns of B then W.
func ParamsID(w []float64, b float64) string {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(b))
	h.Write(buf[:])
	for _, v := range w {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// Params converts a policy into the core-layer annotation counters carry in
// snapshots and report from serving endpoints.
func Params(p *rl.Policy) *core.PolicyParams {
	return &core.PolicyParams{ID: ParamsID(p.W, p.B), W: append([]float64(nil), p.W...), B: p.B}
}

// FromParams rebuilds the runnable policy from a snapshot-embedded
// annotation.
func FromParams(p *core.PolicyParams) *rl.Policy {
	return &rl.Policy{W: append([]float64(nil), p.W...), B: p.B}
}

// Encode serializes the artifact. Output is deterministic for a given
// artifact value.
func (a *Artifact) Encode() ([]byte, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(payload{
		Pattern:    a.Pattern.String(),
		Dim:        len(a.Policy.W),
		W:          a.Policy.W,
		B:          a.Policy.B,
		Provenance: a.Provenance,
	})
	if err != nil {
		return nil, fmt.Errorf("policy: encode: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(magic)
	buf.WriteByte(Version)
	var lenBuf [binary.MaxVarintLen64]byte
	buf.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(body)))])
	buf.Write(body)
	sum := sha256.Sum256(body)
	buf.Write(sum[:checksumLen])
	return buf.Bytes(), nil
}

// IsArtifact reports whether data starts with the policy artifact magic —
// the cheap sniff callers use to tell an artifact from the legacy raw-JSON
// policy export.
func IsArtifact(data []byte) bool { return bytes.HasPrefix(data, magic) }

// Decode parses an artifact produced by Encode. It recovers with an error on
// any malformed input — truncation, bad magic, version skew, corrupted
// payload, dimension mismatch — and never panics; fuzzed in
// FuzzPolicyArtifactDecode.
func Decode(data []byte) (*Artifact, error) {
	if len(data) < len(magic)+1 {
		return nil, fmt.Errorf("policy: artifact truncated: %d bytes", len(data))
	}
	if !bytes.HasPrefix(data, magic) {
		return nil, fmt.Errorf("policy: bad magic %q (want %q)", data[:len(magic)], magic)
	}
	rest := data[len(magic):]
	version := rest[0]
	if version == 0 || version > Version {
		return nil, fmt.Errorf("policy: artifact version %d unsupported (want 1..%d)", version, Version)
	}
	rest = rest[1:]
	length, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("policy: artifact payload length is malformed")
	}
	if length > maxPayloadBytes {
		return nil, fmt.Errorf("policy: artifact declares a %d-byte payload, above the %d cap", length, maxPayloadBytes)
	}
	rest = rest[n:]
	if uint64(len(rest)) < length+checksumLen {
		return nil, fmt.Errorf("policy: artifact truncated: payload declares %d bytes, %d remain", length, len(rest))
	}
	body := rest[:length]
	tail := rest[length:]
	if uint64(len(tail)) != checksumLen {
		return nil, fmt.Errorf("policy: artifact has %d trailing bytes after the checksum", len(tail)-checksumLen)
	}
	sum := sha256.Sum256(body)
	if !bytes.Equal(tail, sum[:checksumLen]) {
		return nil, fmt.Errorf("policy: artifact checksum mismatch (payload corrupted)")
	}
	var p payload
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("policy: artifact payload: %w", err)
	}
	pat, err := parsePattern(p.Pattern)
	if err != nil {
		return nil, err
	}
	if p.Dim != len(p.W) {
		return nil, fmt.Errorf("policy: artifact declares dim=%d but carries %d weights", p.Dim, len(p.W))
	}
	return New(pat, &rl.Policy{W: p.W, B: p.B}, p.Provenance)
}

// parsePattern resolves a pattern by its canonical String name.
func parsePattern(name string) (pattern.Kind, error) {
	for _, k := range pattern.Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("policy: artifact names unknown pattern %q", name)
}

// Reference returns a fixed, deterministic policy for the given pattern,
// used by benchmark cells that need a stable learned-weight workload without
// paying for training. The coefficients are hand-picked to produce weights in
// a plausible learned range (roughly 1–3 over typical state vectors); they
// claim no accuracy, only representative inference cost.
func Reference(pat pattern.Kind) *rl.Policy {
	dim := weights.VectorDim(pat.Size())
	w := make([]float64, dim)
	for i := range w {
		w[i] = 0.08 - 0.03*float64(i%3)
	}
	return &rl.Policy{W: w, B: 0.3}
}
