package policy

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/rl"
	"repro/internal/stream"
	"repro/internal/weights"
)

func testArtifact(t *testing.T) *Artifact {
	t.Helper()
	a, err := New(pattern.Triangle, Reference(pattern.Triangle), Provenance{
		Seed: 7, Iterations: 1000, M: 3000, Streams: 10, Updates: 1000, Episodes: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestArtifactRoundTrip(t *testing.T) {
	a := testArtifact(t)
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !IsArtifact(data) {
		t.Fatal("encoded artifact fails the magic sniff")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pattern != a.Pattern || got.Provenance != a.Provenance {
		t.Fatalf("round trip changed metadata: %+v vs %+v", got, a)
	}
	if got.Policy.B != a.Policy.B || len(got.Policy.W) != len(a.Policy.W) {
		t.Fatalf("round trip changed policy: %+v vs %+v", got.Policy, a.Policy)
	}
	for i := range a.Policy.W {
		if got.Policy.W[i] != a.Policy.W[i] {
			t.Fatalf("weight %d changed: %v vs %v", i, got.Policy.W[i], a.Policy.W[i])
		}
	}
	if got.ID() != a.ID() {
		t.Fatalf("round trip changed identity: %s vs %s", got.ID(), a.ID())
	}
	// Encoding must be deterministic: identity of bytes, not just values.
	again, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding a decoded artifact changed the bytes")
	}
}

func TestParamsIDFollowsParameters(t *testing.T) {
	a := testArtifact(t)
	id := a.ID()
	// Provenance must not affect identity.
	b := *a
	b.Provenance.Seed = 99
	if b.ID() != id {
		t.Fatal("provenance changed the policy ID")
	}
	// Parameters must.
	c, _ := New(a.Pattern, &rl.Policy{W: append([]float64(nil), a.Policy.W...), B: a.Policy.B + 1e-9}, a.Provenance)
	if c.ID() == id {
		t.Fatal("parameter change did not change the policy ID")
	}
	// Params round-trips identity through the core annotation.
	if p := Params(a.Policy); p.ID != id {
		t.Fatalf("Params ID %s != artifact ID %s", p.ID, id)
	}
	rebuilt := FromParams(Params(a.Policy))
	if ParamsID(rebuilt.W, rebuilt.B) != id {
		t.Fatal("FromParams changed the policy identity")
	}
}

func TestNewRejectsBadPolicies(t *testing.T) {
	dim := weights.VectorDim(pattern.Triangle.Size())
	cases := []struct {
		name string
		pat  pattern.Kind
		pol  *rl.Policy
	}{
		{"nil policy", pattern.Triangle, nil},
		{"dim mismatch", pattern.Triangle, &rl.Policy{W: make([]float64, dim+1)}},
		{"wrong pattern dim", pattern.FourClique, Reference(pattern.Triangle)},
		{"invalid pattern", pattern.Kind(99), Reference(pattern.Triangle)},
		{"NaN weight", pattern.Triangle, &rl.Policy{W: append(make([]float64, dim-1), math.NaN())}},
		{"Inf bias", pattern.Triangle, &rl.Policy{W: make([]float64, dim), B: math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := New(tc.pat, tc.pol, Provenance{}); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	a := testArtifact(t)
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(d []byte) []byte) []byte {
		d := append([]byte(nil), data...)
		return mutate(d)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", data[:3]},
		{"bad magic", corrupt(func(d []byte) []byte { d[0] = 'X'; return d })},
		{"version zero", corrupt(func(d []byte) []byte { d[4] = 0; return d })},
		{"version skew", corrupt(func(d []byte) []byte { d[4] = Version + 1; return d })},
		{"truncated payload", data[:len(data)-checksumLen-4]},
		{"truncated checksum", data[:len(data)-1]},
		{"trailing bytes", append(append([]byte(nil), data...), 0)},
		{"payload corruption", corrupt(func(d []byte) []byte { d[len(d)-checksumLen-2] ^= 0x40; return d })},
		{"checksum corruption", corrupt(func(d []byte) []byte { d[len(d)-1] ^= 1; return d })},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.data); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// FuzzPolicyArtifactDecode pins the recover-or-error contract of the artifact
// decoder: arbitrary input must produce an error or a valid artifact, never a
// panic, and a successful decode must survive an encode/decode round trip.
// The seeds cover the structured failure modes (truncation, version skew,
// dimension mismatch, checksum damage) so mutation starts near the format.
func FuzzPolicyArtifactDecode(f *testing.F) {
	base, err := (&Artifact{
		Pattern:    pattern.FourClique,
		Policy:     Reference(pattern.FourClique),
		Provenance: Provenance{Seed: 1, Iterations: 10, M: 100, Streams: 2},
	}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(base)
	f.Add(base[:len(base)-5])
	f.Add([]byte("WSDP"))
	f.Add([]byte{})
	skew := append([]byte(nil), base...)
	skew[4] = 200
	f.Add(skew)
	flip := append([]byte(nil), base...)
	flip[len(flip)-1] ^= 0xff
	f.Add(flip)
	// A dim-mismatch payload, rebuilt with a fresh checksum so it reaches the
	// semantic checks.
	f.Add(mustEncodeRaw([]byte(`{"pattern":"triangle","dim":2,"w":[1,2,3],"b":0}`)))
	f.Add(mustEncodeRaw([]byte(`{"pattern":"no-such","dim":6,"w":[1,2,3,4,5,6],"b":0}`)))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data)
		if err != nil {
			return
		}
		out, err := a.Encode()
		if err != nil {
			t.Fatalf("decoded artifact fails to re-encode: %v", err)
		}
		b, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded artifact fails to decode: %v", err)
		}
		if b.ID() != a.ID() || b.Pattern != a.Pattern {
			t.Fatalf("round trip changed artifact: %s/%s vs %s/%s", b.Pattern, b.ID(), a.Pattern, a.ID())
		}
	})
}

// mustEncodeRaw wraps an arbitrary JSON payload in a well-formed envelope
// (correct magic, version, length, checksum) for fuzz seeding.
func mustEncodeRaw(body []byte) []byte {
	var buf bytes.Buffer
	buf.Write(magic)
	buf.WriteByte(Version)
	var lenBuf [10]byte
	n := 0
	l := uint64(len(body))
	for l >= 0x80 {
		lenBuf[n] = byte(l) | 0x80
		l >>= 7
		n++
	}
	lenBuf[n] = byte(l)
	buf.Write(lenBuf[:n+1])
	buf.Write(body)
	sum := sha256.Sum256(body)
	buf.Write(sum[:checksumLen])
	return buf.Bytes()
}

// TestTrainedArtifactGolden pins the exact artifact bytes wsdtrain produces
// for a fixed seed and cheap budget: training is deterministic, encoding is
// deterministic, so the artifact hash is a fingerprint of the whole
// train-to-artifact path. Gated to amd64 — Go emits fused multiply-add on
// arm64, which perturbs the trained parameters in the last ulp.
func TestTrainedArtifactGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden bytes pinned on amd64; GOARCH=%s has different float contraction", runtime.GOARCH)
	}
	rng := rand.New(rand.NewSource(11))
	edges := gen.HolmeKim(300, 4, 0.7, rng)
	streams := []stream.Stream{stream.LightDeletion(edges, 0.2, rng)}
	pol, stats, err := rl.Train(rl.TrainConfig{
		Pattern:    pattern.Triangle,
		M:          150,
		Streams:    streams,
		Iterations: 30,
		Seed:       5,
		DDPG:       rl.Config{BatchSize: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(pattern.Triangle, pol, Provenance{
		Seed:       5,
		Iterations: 30,
		M:          150,
		Streams:    len(streams),
		Updates:    stats.Updates,
		Episodes:   stats.Episodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	const want = "e4c631c9359f61d89b4fa3acbfece659a59748bba135b0d0f76702afdfa626bd"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("trained artifact hash = %s, want %s (id %s; a deliberate format or training change must re-pin this)", got, want, a.ID())
	}
}
