// Package xrand provides the checkpointable random number generator the
// samplers draw their rank uniforms from. The generator is splitmix64
// (Steele, Lea & Flood 2014): one uint64 of state, a handful of arithmetic
// instructions per draw, and full-period 2^64 output. The single-word state is
// the point — a counter snapshot can embed it, and a restored counter then
// continues the exact uniform sequence the interrupted run would have drawn,
// making snapshot→restore→resume bit-identical to never having stopped.
//
// *Rand also implements math/rand.Source64, so code that needs the richer
// math/rand API (Intn, Shuffle, Perm, ...) can wrap it: rand.New(xr). Note
// that math/rand.Rand buffers state of its own for some methods (Read), so
// only the bare *Rand is checkpointable.
package xrand

// Rand is a splitmix64 generator. The zero value is a valid generator seeded
// with 0; construct with New or FromState for clarity.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Distinct seeds yield independent-
// looking sequences; splitmix64's output function scrambles even consecutive
// seeds thoroughly. One caveat: seeds that differ by a multiple of the state
// increment 0x9E3779B97F4A7C15 produce the SAME sequence merely shifted —
// use NewSequence to derive families of generators from one base seed.
func New(seed int64) *Rand { return &Rand{state: uint64(seed)} }

// NewSequence returns the i-th member of a family of decorrelated generators
// derived from one base seed (shard ensembles use one per shard). Both seed
// and index pass through the output scrambler before combining, so no
// arithmetic relation between members survives — in particular, members are
// not shifted copies of each other, which naive `seed + i*stride` seeding
// produces whenever the stride hits a multiple of the state increment.
func NewSequence(seed, i int64) *Rand {
	return &Rand{state: mix(uint64(seed)) ^ mix(uint64(i)^0x6A09E667F3BCC909)}
}

// FromState reconstructs a generator from a State() value. The returned
// generator continues the original sequence exactly.
func FromState(state uint64) *Rand { return &Rand{state: state} }

// State returns the complete generator state. Store it in a checkpoint and
// revive with FromState.
func (r *Rand) State() uint64 { return r.state }

// SetState overwrites the generator state with a State() value.
func (r *Rand) SetState(state uint64) { r.state = state }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix(r.state)
}

// mix is splitmix64's output scrambler: a bijection on uint64 with strong
// avalanche, shared by the draw path and NewSequence's seed derivation.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits, the same
// construction math/rand uses.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Int63 implements math/rand.Source.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed implements math/rand.Source.
func (r *Rand) Seed(seed int64) { r.state = uint64(seed) }
