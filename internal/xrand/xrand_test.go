package xrand

import (
	"math"
	"math/rand"
	"testing"
)

func TestDeterministicAndSeedSensitive(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c, d := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided on %d of 1000 draws", same)
	}
}

// TestNewSequenceDecorrelated is the regression test for the stride bug:
// seeding shard i with seed + i*gamma (gamma = the splitmix64 increment)
// makes stream i a shifted copy of stream 0. NewSequence must produce
// streams that are neither equal nor shifted copies of each other.
func TestNewSequenceDecorrelated(t *testing.T) {
	const draws, maxShift = 1000, 8
	base := make([]uint64, draws+maxShift)
	r0 := NewSequence(42, 0)
	for i := range base {
		base[i] = r0.Uint64()
	}
	for seq := int64(1); seq <= 4; seq++ {
		ri := NewSequence(42, seq)
		vals := make([]uint64, draws)
		for i := range vals {
			vals[i] = ri.Uint64()
		}
		for shift := 0; shift <= maxShift; shift++ {
			matches := 0
			for i := 0; i < draws; i++ {
				if vals[i] == base[i+shift] {
					matches++
				}
			}
			if matches > 0 {
				t.Fatalf("sequence %d matches sequence 0 shifted by %d on %d of %d draws", seq, shift, matches, draws)
			}
		}
	}
	// Demonstrate the bug NewSequence avoids: gamma-stride seeding IS a
	// shifted copy, which is why the facade must not use it.
	const gamma = int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64
	a, b := New(7), New(7+gamma)
	a.Uint64()
	if a.Uint64() != b.Uint64() || a.Uint64() != b.Uint64() {
		t.Fatal("gamma-stride seeds should be shifted copies (sanity check of the hazard)")
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 37; i++ {
		r.Uint64()
	}
	resumed := FromState(r.State())
	for i := 0; i < 1000; i++ {
		if got, want := resumed.Uint64(), r.Uint64(); got != want {
			t.Fatalf("restored sequence diverged at draw %d: %d != %d", i, got, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 200_000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestImplementsSource64(t *testing.T) {
	var _ rand.Source64 = New(1)
	// Wrapping in math/rand must work for callers that need the rich API.
	rr := rand.New(New(9))
	if n := rr.Intn(10); n < 0 || n >= 10 {
		t.Fatalf("Intn out of range: %d", n)
	}
}
