// Package wsd is a Go implementation of "Reinforcement Learning Enhanced
// Weighted Sampling for Accurate Subgraph Counting on Fully Dynamic Graph
// Streams" (ICDE 2023): the WSD weighted sampling framework with its unbiased
// subgraph-count estimator, the GPS/GPS-A priority-sampling family, the
// uniform-sampling baselines (TRIEST-FD, ThinkD, WRS), and a pure-Go DDPG
// learner for the data-driven weight function (WSD-L).
//
// This root package is the supported facade: it re-exports the types a
// downstream user needs and provides convenience constructors. Power users
// can reach the subsystems directly under internal/ when vendoring the
// module.
//
// # Quick start
//
//	counter, err := wsd.NewTriangleCounter(10_000, wsd.WithSeed(42))
//	if err != nil { ... }
//	counter.Process(wsd.Insert(1, 2))
//	counter.Process(wsd.Insert(2, 3))
//	counter.Process(wsd.Insert(1, 3))
//	fmt.Println(counter.Estimate()) // 1
//
// See examples/ for runnable programs and cmd/ for the reproduction CLIs.
package wsd

import (
	"encoding/json"
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/partition"
	"repro/internal/pattern"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/rl"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/weights"
	"repro/internal/window"
	"repro/internal/xrand"
)

// Re-exported fundamental types.
type (
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Edge is a normalized undirected edge; build with NewEdge.
	Edge = graph.Edge
	// Event is one stream event (op, edge).
	Event = stream.Event
	// Stream is a sequence of events.
	Stream = stream.Stream
	// Pattern identifies a subgraph pattern (WedgePattern, TrianglePattern,
	// FourCliquePattern).
	Pattern = pattern.Kind
	// WeightFunc maps the MDP state of an arriving edge to its sampling
	// weight.
	WeightFunc = weights.Func
	// State is the MDP state handed to weight functions.
	State = weights.State
	// Policy is a trained WSD-L weight policy.
	Policy = rl.Policy
)

// Supported subgraph patterns.
const (
	// WedgePattern is the length-2 path.
	WedgePattern = pattern.Wedge
	// TrianglePattern is the 3-clique.
	TrianglePattern = pattern.Triangle
	// FourCliquePattern is the 4-clique.
	FourCliquePattern = pattern.FourClique
)

// NewEdge returns the normalized undirected edge {u, v}.
func NewEdge(u, v VertexID) Edge { return graph.NewEdge(u, v) }

// Insert returns the insertion event (+, {u, v}).
func Insert(u, v VertexID) Event {
	return Event{Op: stream.Insert, Edge: graph.NewEdge(u, v)}
}

// Delete returns the deletion event (-, {u, v}).
func Delete(u, v VertexID) Event {
	return Event{Op: stream.Delete, Edge: graph.NewEdge(u, v)}
}

// Counter is the single-pass estimator surface shared by WSD and the
// baselines: feed events, read the unbiased running estimate.
type Counter interface {
	Process(ev Event)
	Estimate() float64
	Name() string
}

// options collects the functional options for the counter constructors.
type options struct {
	seed   int64
	weight WeightFunc
	policy *Policy

	// Sharded-counter options; ignored by the single-counter constructors.
	momGroups   int
	fullBudget  bool
	shardBuffer int

	// Partitioned-deployment options (WithPartition); partitionCount == 0
	// means not partitioned.
	partitionIndex int
	partitionCount int

	// Temporal-mode options (WithWindow, WithDecay); both zero means
	// whole-stream estimation.
	window   int64
	halflife float64
}

// Option configures a counter constructor.
type Option func(*options)

// WithSeed fixes the sampler's randomness; counters with equal seeds and
// inputs are fully deterministic.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithWeightFunc uses a custom weight function W(e, R) (defaults to the
// paper's WSD-H heuristic 9|H(e)|+1).
func WithWeightFunc(w WeightFunc) Option {
	return func(o *options) { o.weight = w }
}

// WithPolicy uses a trained WSD-L policy as the weight function.
func WithPolicy(p *Policy) Option {
	return func(o *options) { o.policy = p }
}

// WithMedianOfMeans makes a sharded counter combine its shard estimates with
// a median-of-means over the given number of groups instead of the plain
// mean. groups equal to the shard count is the plain median. Median-of-means
// is robust to the heavy right tail of inverse-probability estimates; the
// mean preserves exact unbiasedness. Ignored by non-sharded constructors.
func WithMedianOfMeans(groups int) Option {
	return func(o *options) { o.momGroups = groups }
}

// WithFullBudgetShards gives every shard the full reservoir budget m instead
// of the default split m/shards. This uses shards times the memory and buys
// pure variance reduction (the ensemble mean has 1/shards of the
// single-counter variance). Ignored by non-sharded constructors.
func WithFullBudgetShards() Option {
	return func(o *options) { o.fullBudget = true }
}

// WithShardBuffer sets each shard's feed buffer, in batches (default 4).
// Ignored by non-sharded constructors.
func WithShardBuffer(n int) Option {
	return func(o *options) { o.shardBuffer = n }
}

// WithPartition declares the counter to be partition index of a count-way
// partitioned fleet: the coordinator routes each edge to the owners of its
// endpoints (internal/partition.Owner — a fixed vertex hash), and this
// counter scales every contribution by the fraction of the completing edge's
// endpoints it owns (1/2 or 1), so the fleet's summed estimates — divided by
// the pattern's visibility factor partition.Beta — stay unbiased. Applies to
// every constructor and restore; must match the coordinator's fleet size and
// this worker's slot in it.
func WithPartition(index, count int) Option {
	return func(o *options) { o.partitionIndex, o.partitionCount = index, count }
}

// WithWindow restricts estimation to a sliding window over the last w
// insertion events: an edge inserted at tick t stops contributing at tick
// t+w, expired through the same deletion path genuine stream deletions use,
// so "how many triangles formed in the last w insertions" is served with the
// whole-stream estimator's statistical guarantees. Time is insertion-event
// time — the stream carries no wall-clock timestamps, so "the last hour"
// translates to the producer's known event rate. w = math.MaxInt64 (nothing
// ever expires) is bit-identical to the whole-stream counter. Mutually
// exclusive with WithDecay; not supported by multi-pattern or local
// counters.
func WithWindow(w int64) Option {
	return func(o *options) { o.window = w }
}

// WithDecay exponentially decays the estimate with the given halflife,
// measured in insertion events: a pattern instance aged dt ticks contributes
// 2^(-dt/halflife) of its weight, so the estimate tracks recent formation
// activity instead of the all-time count. Sampling weights grow by the
// inverse factor, biasing the reservoir toward recent edges by exactly the
// decay ratio (the WRS temporal-locality insight). halflife = +Inf is
// bit-identical to the whole-stream counter. Mutually exclusive with
// WithWindow; not supported by multi-pattern or local counters.
func WithDecay(halflife float64) Option {
	return func(o *options) { o.halflife = halflife }
}

// resolveTemporal reduces the WithWindow/WithDecay options to a validated
// window.Spec.
func resolveTemporal(o *options) (window.Spec, error) {
	return window.New(o.window, o.halflife)
}

// partitionWeight reduces the WithPartition option to the per-edge
// contribution scale, or nil when not partitioned.
func partitionWeight(o *options) (func(graph.Edge) float64, error) {
	if o.partitionCount == 0 && o.partitionIndex == 0 {
		return nil, nil
	}
	if o.partitionCount < 1 || o.partitionIndex < 0 || o.partitionIndex >= o.partitionCount {
		return nil, fmt.Errorf("wsd: WithPartition(%d, %d): index must be in [0, count)", o.partitionIndex, o.partitionCount)
	}
	return partition.EventWeight(o.partitionIndex, o.partitionCount), nil
}

// resolveWeight reduces the weight-related options to the effective weight
// function, defaulting to the paper's WSD-H heuristic.
func resolveWeight(o *options) (WeightFunc, error) {
	w := o.weight
	if o.policy != nil {
		if w != nil {
			return nil, fmt.Errorf("wsd: WithWeightFunc and WithPolicy are mutually exclusive")
		}
		w = o.policy.Func()
	}
	if w == nil {
		w = weights.GPSDefault()
	}
	return w, nil
}

// skipTemporal reports whether the counter can skip extracting the temporal
// state features: the default WSD-H heuristic reads only the topological
// features, so nothing observes them. A trained policy consumes them, and a
// user-supplied weight function might, so both keep the full state.
func skipTemporal(o *options) bool {
	return o.policy == nil && o.weight == nil
}

// policyAnnotation converts the WithPolicy option into the core-layer
// annotation that snapshots embed and serving layers report; nil when the
// counter runs a heuristic or user-supplied weight function.
func policyAnnotation(o *options) *core.PolicyParams {
	if o.policy == nil {
		return nil
	}
	return policy.Params(o.policy)
}

// restoreWeight resolves the weight function for a restore with the
// precedence the snapshot-v4 policy embedding defines: explicit weight
// options (WithPolicy, WithWeightFunc) win, exactly as before; otherwise a
// policy embedded in the snapshot is revived (the restored counter keeps
// drawing the learned weights that built its sample, which is what makes
// resume bit-identical under WSD-L without re-supplying the artifact); only
// when neither exists does the default WSD-H heuristic apply. Each call
// builds a fresh policy closure, so per-shard callers get goroutine-private
// scratch state.
func restoreWeight(o *options, embedded *core.PolicyParams) (WeightFunc, bool, *core.PolicyParams, error) {
	if o.policy != nil || o.weight != nil {
		w, err := resolveWeight(o)
		if err != nil {
			return nil, false, nil, err
		}
		return w, skipTemporal(o), policyAnnotation(o), nil
	}
	if embedded != nil {
		return policy.FromParams(embedded).Func(), false, embedded.Clone(), nil
	}
	return weights.GPSDefault(), true, nil, nil
}

// NewCounter returns a WSD counter for the given pattern with reservoir
// capacity m. Without options it is WSD-H (the paper's heuristic instance).
func NewCounter(p Pattern, m int, opts ...Option) (Counter, error) {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	w, err := resolveWeight(&o)
	if err != nil {
		return nil, err
	}
	ew, err := partitionWeight(&o)
	if err != nil {
		return nil, err
	}
	spec, err := resolveTemporal(&o)
	if err != nil {
		return nil, err
	}
	return core.New(core.Config{
		M:            m,
		Pattern:      p,
		Weight:       w,
		Rng:          xrand.New(o.seed),
		SkipTemporal: skipTemporal(&o),
		Policy:       policyAnnotation(&o),
		EventWeight:  ew,
		Temporal:     spec,
	})
}

// NewTriangleCounter returns a WSD triangle counter with reservoir capacity
// m.
func NewTriangleCounter(m int, opts ...Option) (Counter, error) {
	return NewCounter(TrianglePattern, m, opts...)
}

// NewWedgeCounter returns a WSD wedge counter with reservoir capacity m.
func NewWedgeCounter(m int, opts ...Option) (Counter, error) {
	return NewCounter(WedgePattern, m, opts...)
}

// ExactCounter tracks exact subgraph counts over a dynamic stream; use it as
// ground truth when validating estimates on small streams.
type ExactCounter struct {
	inner *exact.Counter
	kind  Pattern
}

// NewExactCounter returns an exact counter for pattern p.
func NewExactCounter(p Pattern) *ExactCounter {
	return &ExactCounter{inner: exact.New(p), kind: p}
}

// Process consumes one event.
func (c *ExactCounter) Process(ev Event) { c.inner.Apply(ev) }

// Estimate returns the exact count (the name keeps it a Counter).
func (c *ExactCounter) Estimate() float64 { return float64(c.inner.Count(c.kind)) }

// Name identifies the counter.
func (c *ExactCounter) Name() string { return "exact" }

// TrainPolicy trains a WSD-L weight policy with DDPG on the given training
// streams (Section IV of the paper). m is the reservoir size used during
// training episodes; iterations is the gradient-update budget (the paper uses
// 1,000).
func TrainPolicy(p Pattern, m, iterations int, trainStreams []Stream, seed int64) (*Policy, error) {
	policy, _, err := rl.Train(rl.TrainConfig{
		Pattern:    p,
		M:          m,
		Streams:    trainStreams,
		Iterations: iterations,
		Seed:       seed,
	})
	return policy, err
}

// HeuristicWeight returns the paper's WSD-H weight function 9|H(e)|+1.
func HeuristicWeight() WeightFunc { return weights.GPSDefault() }

// UniformWeight returns the constant weight function (uniform sampling).
func UniformWeight() WeightFunc { return weights.Uniform() }

// LocalCounter estimates both the global pattern count and per-vertex
// participation counts (local counting, the companion problem behind the
// anomaly-detection applications in the paper's introduction).
type LocalCounter = local.Counter

// VertexCount pairs a vertex with its local estimate.
type VertexCount = local.VertexCount

// NewLocalCounter returns a WSD counter that additionally maintains unbiased
// per-vertex participation estimates.
func NewLocalCounter(p Pattern, m int, opts ...Option) (*LocalCounter, error) {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	w, err := resolveWeight(&o)
	if err != nil {
		return nil, err
	}
	ew, err := partitionWeight(&o)
	if err != nil {
		return nil, err
	}
	if o.window != 0 || o.halflife != 0 {
		// The per-vertex estimates do not yet carry the temporal modes (a
		// decayed global estimate with undecayed local counts would be
		// silently inconsistent), so refuse loudly instead.
		return nil, fmt.Errorf("wsd: local counters do not support WithWindow/WithDecay")
	}
	return local.New(core.Config{
		M:            m,
		Pattern:      p,
		Weight:       w,
		Rng:          xrand.New(o.seed),
		SkipTemporal: skipTemporal(&o),
		Policy:       policyAnnotation(&o),
		EventWeight:  ew,
	})
}

// Batch is a refcounted, pool-recycled batch of events: the zero-allocation
// currency between stream producers and the ingestion layers. Get one from a
// BatchPool, fill Events, and hand it to Processor.SubmitPooled or
// ShardedCounter.SubmitPooled, which release it back to the pool after the
// events are applied.
type Batch = stream.Batch

// BatchPool recycles Batches; the zero value is ready to use.
type BatchPool = stream.BatchPool

// Processor ingests events from concurrent producers and publishes the
// running estimate for lock-free readers; see NewProcessor. Submit enqueues
// one event; SubmitBatch is the amortized fast path and SubmitPooled its
// zero-allocation variant over pooled batches.
type Processor = pipeline.Processor

// NewProcessor wraps a counter in a dedicated ingestion goroutine with the
// given channel buffer. The counter must not be used directly afterwards.
func NewProcessor(c Counter, buffer int) *Processor {
	return pipeline.New(c, buffer)
}

// ShardedCounter is an ensemble of independently seeded WSD counters driven
// concurrently on a worker pool; see NewShardedCounter. Feed it with Submit
// or (preferably) SubmitBatch, read Estimate concurrently, and Close it to
// drain and obtain the final combined estimate.
type ShardedCounter = shard.Ensemble

// NewShardedCounter returns an ensemble of shards independently seeded WSD
// counters for pattern p, all fed every event, whose estimates are combined
// into one ensemble estimate (mean by default; see WithMedianOfMeans).
//
// By default the reservoir budget m is split across the shards (each shard
// gets m/shards edges, remainders distributed, so total memory equals a
// single counter with budget m); WithFullBudgetShards gives every shard the
// full m instead. Split budget is the throughput operating point: for
// patterns with superlinear per-event enumeration cost the K small reservoirs
// do less total work than one large one, and the shards run concurrently.
// Full budget is the accuracy operating point: the mean of K independent
// estimates has 1/K of the variance.
//
// A custom WithWeightFunc function is shared by every shard and must be safe
// for concurrent use (the built-in heuristics are). A trained policy is safe:
// each shard receives its own evaluation closure, since a policy closure's
// scratch state is single-goroutine.
func NewShardedCounter(p Pattern, m, shards int, opts ...Option) (*ShardedCounter, error) {
	if shards < 1 {
		return nil, fmt.Errorf("wsd: shards=%d, need at least 1", shards)
	}
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	w, err := resolveWeight(&o)
	if err != nil {
		return nil, err
	}
	ew, err := partitionWeight(&o)
	if err != nil {
		return nil, err
	}
	spec, err := resolveTemporal(&o)
	if err != nil {
		return nil, err
	}
	budgets := shard.SplitBudget(m, shards)
	counters := make([]shard.Counter, shards)
	for i := range counters {
		budget := m
		if !o.fullBudget {
			budget = budgets[i]
			if budget < p.Size() {
				return nil, fmt.Errorf("wsd: split budget m/shards=%d/%d is below pattern size |H|=%d; use fewer shards, a larger m, or WithFullBudgetShards", m, shards, p.Size())
			}
		}
		wi := w
		if o.policy != nil {
			// Policy closures carry per-call scratch state; give the shard
			// worker goroutine its own.
			wi = o.policy.Func()
		}
		c, err := core.New(core.Config{
			M:            budget,
			Pattern:      p,
			Weight:       wi,
			Rng:          xrand.NewSequence(o.seed, int64(i)),
			SkipTemporal: skipTemporal(&o),
			Policy:       policyAnnotation(&o),
			EventWeight:  ew,
			Temporal:     spec,
		})
		if err != nil {
			return nil, err
		}
		counters[i] = c
	}
	return shard.New(counters, shardOptions(&o)...)
}

// shardOptions reduces the sharding-related options to shard.Options, shared
// by NewShardedCounter and RestoreShardedCounter.
func shardOptions(o *options) []shard.Option {
	var sopts []shard.Option
	if o.momGroups > 0 {
		sopts = append(sopts, shard.WithCombiner(shard.MedianOfMeans(o.momGroups)))
	}
	if o.shardBuffer > 0 {
		sopts = append(sopts, shard.WithBuffer(o.shardBuffer))
	}
	return sopts
}

// Checkpointable is implemented by counters whose complete state — reservoir,
// thresholds, temporal bookkeeping, and RNG state — serializes to bytes. The
// counters returned by NewCounter, NewLocalCounter, and NewMultiCounter
// implement it, and so do Processor (Snapshot) and ShardedCounter (Snapshot)
// at the ingestion layer.
// A counter restored from a checkpoint continues bit-identically to the
// uninterrupted run: same sample trajectory, same estimates.
type Checkpointable interface {
	Checkpoint() ([]byte, error)
}

// Checkpoint serializes a counter's complete state. It accepts any of the
// package's counters — single, local, multi-pattern, or an ingestion layer —
// and fails for counters that do not support checkpointing (e.g. the exact
// oracle).
func Checkpoint(c any) ([]byte, error) {
	ck, ok := c.(Checkpointable)
	if !ok {
		if named, ok := c.(interface{ Name() string }); ok {
			return nil, fmt.Errorf("wsd: %s counter does not support checkpointing", named.Name())
		}
		return nil, fmt.Errorf("wsd: %T does not support checkpointing", c)
	}
	return ck.Checkpoint()
}

// RestoreCounter revives a counter from a Checkpoint blob produced by a
// NewCounter counter. Heuristic and user-supplied weight functions are code,
// not state, so the same weight options used at construction time must be
// passed again; a learned policy travels in the snapshot itself (format v4)
// and is revived automatically when no explicit weight option is given. The
// RNG state comes from the checkpoint, making the restored counter's future
// trajectory bit-identical to the uninterrupted one.
func RestoreCounter(data []byte, opts ...Option) (Counter, error) {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	ew, err := partitionWeight(&o)
	if err != nil {
		return nil, err
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	w, skip, params, err := restoreWeight(&o, snap.Policy)
	if err != nil {
		return nil, err
	}
	spec, err := resolveTemporal(&o)
	if err != nil {
		return nil, err
	}
	// A zero spec adopts the snapshot's mode; an explicit WithWindow/
	// WithDecay must match it (core.Restore checks).
	return core.Restore(snap, core.Config{Weight: w, Rng: xrand.New(o.seed), SkipTemporal: skip, Policy: params, EventWeight: ew, Temporal: spec})
}

// RestoreLocalCounter revives a local counter from a Checkpoint blob produced
// by a NewLocalCounter counter, per-vertex estimates included.
func RestoreLocalCounter(data []byte, opts ...Option) (*LocalCounter, error) {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	ew, err := partitionWeight(&o)
	if err != nil {
		return nil, err
	}
	if o.window != 0 || o.halflife != 0 {
		return nil, fmt.Errorf("wsd: local counters do not support WithWindow/WithDecay")
	}
	snap, err := local.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	w, skip, params, err := restoreWeight(&o, snap.Core.Policy)
	if err != nil {
		return nil, err
	}
	return local.Restore(snap, core.Config{Weight: w, Rng: xrand.New(o.seed), SkipTemporal: skip, Policy: params, EventWeight: ew})
}

// ShardedSnapshotInfo summarizes a ShardedCounter snapshot blob without
// restoring it: what pattern(s) it counts, how many shards it holds, and the
// total reservoir budget across shards. Deployments use it to refuse a
// snapshot that does not match their configuration before swapping it in.
type ShardedSnapshotInfo struct {
	// Pattern is the primary pattern (the only one for single-pattern
	// deployments).
	Pattern Pattern
	// Patterns lists every counted pattern in estimator order for
	// multi-pattern deployments (NewShardedMultiCounter); it is nil for
	// single-pattern snapshots.
	Patterns []Pattern
	Shards   int
	TotalM   int // sum of per-shard budgets (equals m in split-budget mode, m*Shards in full-budget mode)
	// Position is the absolute stream position the snapshot was taken at
	// (zero for snapshots predating the field). Restores seed the rebuilt
	// ensemble's Processed with it, so a deployment's reported position
	// survives checkpoint/restore.
	Position int64
	// Policy is the learned policy active when the snapshot was taken, nil
	// for heuristic weights (and for snapshots predating format v4). Every
	// shard must carry the same policy; a restore without explicit weight
	// options revives it.
	Policy *core.PolicyParams
	// Window and Halflife record the temporal estimation mode (format v5);
	// both zero for whole-stream snapshots and for snapshots predating the
	// field. Every shard must carry the same mode.
	Window   int64
	Halflife float64
}

// decodeShardedSnapshot decodes an ensemble blob into per-shard core
// snapshots plus the summary info, shared by InspectShardedSnapshot and the
// restore path so validation never forces a second full decode. Cluster
// snapshots (internal/cluster: one ensemble blob per worker node) are
// recognized and refused with a pointed error — the restore dispatch
// otherwise reads their version field as 0 and the mistake would surface as
// a confusing version error. The probe only runs after the ensemble decode
// has already failed, so valid restores never pay a second parse.
func decodeShardedSnapshot(data []byte) ([]*core.Snapshot, ShardedSnapshotInfo, error) {
	snap, err := shard.DecodeEnsembleSnapshot(data)
	if err != nil {
		var clusterProbe struct {
			ClusterVersion int `json:"cluster_version"`
		}
		if json.Unmarshal(data, &clusterProbe) == nil && clusterProbe.ClusterVersion > 0 {
			return nil, ShardedSnapshotInfo{}, fmt.Errorf("wsd: blob is a cluster snapshot (cluster_version %d) spanning several worker processes; restore it through a coordinator's /restore, not a single-process ensemble", clusterProbe.ClusterVersion)
		}
		return nil, ShardedSnapshotInfo{}, err
	}
	cores := make([]*core.Snapshot, len(snap.Shards))
	info := ShardedSnapshotInfo{Shards: len(snap.Shards), Position: snap.Position}
	for i, raw := range snap.Shards {
		cs, err := core.DecodeSnapshot(raw)
		if err != nil {
			return nil, ShardedSnapshotInfo{}, fmt.Errorf("wsd: shard %d: %w", i, err)
		}
		if i == 0 {
			info.Pattern = cs.Pattern
			if cs.Multi() {
				info.Patterns = append([]Pattern(nil), cs.Patterns...)
			}
			info.Policy = cs.Policy.Clone()
			info.Window, info.Halflife = cs.Window, cs.Halflife
		} else if cs.Pattern != info.Pattern || !slices.Equal(info.Patterns, cs.Patterns) {
			return nil, ShardedSnapshotInfo{}, fmt.Errorf("wsd: snapshot mixes patterns across shards (%v vs %v)", shardPatterns(info), cs.Patterns)
		} else if shardPolicyID(cs.Policy) != shardPolicyID(info.Policy) {
			return nil, ShardedSnapshotInfo{}, fmt.Errorf("wsd: snapshot mixes policies across shards (shard %d has %q, shard 0 has %q)", i, shardPolicyID(cs.Policy), shardPolicyID(info.Policy))
		} else if cs.Window != info.Window || cs.Halflife != info.Halflife {
			return nil, ShardedSnapshotInfo{}, fmt.Errorf("wsd: snapshot mixes temporal modes across shards (shard %d has window=%d halflife=%v, shard 0 has window=%d halflife=%v)", i, cs.Window, cs.Halflife, info.Window, info.Halflife)
		}
		info.TotalM += cs.M
		cores[i] = cs
	}
	return cores, info, nil
}

// shardPolicyID renders a policy annotation for uniformity comparison and
// error messages; the empty string means heuristic weights.
func shardPolicyID(p *core.PolicyParams) string {
	if p == nil {
		return ""
	}
	return p.ID
}

// shardPatterns renders an info's pattern set for error messages.
func shardPatterns(info ShardedSnapshotInfo) []Pattern {
	if info.Patterns != nil {
		return info.Patterns
	}
	return []Pattern{info.Pattern}
}

// InspectShardedSnapshot decodes the header and per-shard metadata of a
// ShardedCounter.Snapshot blob.
func InspectShardedSnapshot(data []byte) (ShardedSnapshotInfo, error) {
	_, info, err := decodeShardedSnapshot(data)
	return info, err
}

// RestoreShardedCounter revives a sharded counter from a blob produced by
// ShardedCounter.Snapshot. Reservoir budgets, pattern(s), and per-shard RNG
// states come from the snapshot; heuristic weight functions and the combiner
// are code and are re-supplied through the options, which must match the
// original construction for the ensemble to continue bit-identically. A
// learned policy needs no re-supplying: the snapshot embeds it, and the
// restore revives it whenever no explicit weight option overrides. Snapshots
// from multi-pattern deployments (NewShardedMultiCounter) restore
// multi-pattern shards automatically.
func RestoreShardedCounter(data []byte, opts ...Option) (*ShardedCounter, error) {
	return RestoreShardedCounterChecked(data, nil, opts...)
}

// RestoreShardedCounterChecked is RestoreShardedCounter with a validation
// hook: check (if non-nil) sees the snapshot's summary before any counter is
// built and can veto the restore — how a deployment refuses a snapshot that
// does not match its configuration, with a single decode of the blob.
func RestoreShardedCounterChecked(data []byte, check func(ShardedSnapshotInfo) error, opts ...Option) (*ShardedCounter, error) {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	cores, info, err := decodeShardedSnapshot(data)
	if err != nil {
		return nil, err
	}
	if check != nil {
		if err := check(info); err != nil {
			return nil, err
		}
	}
	counters := make([]shard.Counter, len(cores))
	for i, snap := range cores {
		c, err := restoreShardCounter(snap, &o, i)
		if err != nil {
			return nil, fmt.Errorf("wsd: restore shard %d: %w", i, err)
		}
		counters[i] = c
	}
	return shard.New(counters, append(shardOptions(&o), shard.WithBasePosition(info.Position))...)
}

// weightSwapper is the optional shard-counter interface behind SwapPolicy;
// the facade's core and multi counters both implement it.
type weightSwapper interface {
	SetWeight(w weights.Func, skipTemporal bool, params *core.PolicyParams)
}

// SwapPolicy atomically replaces the weight function of a live sharded
// counter with a trained policy, without losing reservoir state: the swap
// runs under the ensemble's quiesce barrier (every in-flight batch drained,
// every worker parked), each shard receives its own policy closure, and
// weights only affect future events — ranks already drawn keep their values,
// so the estimator stays unbiased across the swap (Theorem 4 conditions only
// on the weights used at each event's own draw). Passing nil reverts to the
// WSD-H heuristic.
//
// The swap is all-or-nothing: every shard's counter is verified to support
// weight swapping before any is touched (ensembles built by this package
// always do; hand-built ensembles over custom shard.Counter implementations
// may not). Subsequent snapshots embed the new policy, so a restore resumes
// under it bit-identically.
func SwapPolicy(c *ShardedCounter, p *Policy) error {
	var params *core.PolicyParams
	if p != nil {
		if len(p.W) == 0 {
			return fmt.Errorf("wsd: SwapPolicy: policy has an empty weight vector")
		}
		params = policy.Params(p)
	}
	// First pass verifies support on every shard without mutating anything,
	// so a mixed ensemble refuses cleanly instead of swapping some shards.
	// The verdict is a property of the counter types, so it cannot change
	// between the two barriers.
	if err := c.Quiesce(func(i int, sc shard.Counter) error {
		if _, ok := sc.(weightSwapper); !ok {
			return fmt.Errorf("wsd: SwapPolicy: shard %d counter (%T) does not support weight swapping", i, sc)
		}
		return nil
	}); err != nil {
		return err
	}
	return c.Quiesce(func(i int, sc shard.Counter) error {
		ws := sc.(weightSwapper)
		if p == nil {
			ws.SetWeight(weights.GPSDefault(), true, nil)
			return nil
		}
		// Policy closures carry per-call scratch state; give each shard
		// worker goroutine its own.
		ws.SetWeight(p.Func(), false, params)
		return nil
	})
}

// ActiveShardedPolicy reports the policy annotation a sharded counter runs
// under (nil for heuristic weights), read under the quiesce barrier. Shards
// always agree — construction, restore, and SwapPolicy all set them
// together — so the first shard's annotation is returned.
func ActiveShardedPolicy(c *ShardedCounter) (*core.PolicyParams, error) {
	var params *core.PolicyParams
	err := c.Quiesce(func(i int, sc shard.Counter) error {
		if i != 0 {
			return nil
		}
		type policyHolder interface{ ActivePolicy() *core.PolicyParams }
		if h, ok := sc.(policyHolder); ok {
			params = h.ActivePolicy().Clone()
		}
		return nil
	})
	return params, err
}
