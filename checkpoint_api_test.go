package wsd_test

import (
	"math/rand"
	"testing"

	wsd "repro"

	"repro/internal/gen"
	"repro/internal/stream"
)

func checkpointStream(t *testing.T, seed int64, n int) wsd.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := gen.HolmeKim(n, 4, 0.6, rng)
	return stream.LightDeletion(edges, 0.25, rng)
}

// TestFacadeCheckpointBitIdentical: the acceptance criterion at the facade —
// a counter snapshotted mid-stream and restored produces byte-identical
// estimates to an uninterrupted run over the same stream.
func TestFacadeCheckpointBitIdentical(t *testing.T) {
	s := checkpointStream(t, 11, 500)
	cut := len(s) / 2

	build := func() wsd.Counter {
		c, err := wsd.NewTriangleCounter(200, wsd.WithSeed(77))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	uninterrupted := build()
	interrupted := build()
	for _, ev := range s[:cut] {
		uninterrupted.Process(ev)
		interrupted.Process(ev)
	}
	blob, err := wsd.Checkpoint(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := wsd.RestoreCounter(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range s[cut:] {
		uninterrupted.Process(ev)
		restored.Process(ev)
	}
	if restored.Estimate() != uninterrupted.Estimate() {
		t.Fatalf("restored %v, uninterrupted %v", restored.Estimate(), uninterrupted.Estimate())
	}
}

func TestFacadeLocalCheckpointBitIdentical(t *testing.T) {
	s := checkpointStream(t, 13, 400)
	cut := len(s) * 2 / 3

	build := func() *wsd.LocalCounter {
		c, err := wsd.NewLocalCounter(wsd.TrianglePattern, 150, wsd.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	uninterrupted := build()
	interrupted := build()
	for _, ev := range s[:cut] {
		uninterrupted.Process(ev)
		interrupted.Process(ev)
	}
	blob, err := interrupted.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := wsd.RestoreLocalCounter(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range s[cut:] {
		uninterrupted.Process(ev)
		restored.Process(ev)
	}
	if restored.Estimate() != uninterrupted.Estimate() {
		t.Fatalf("restored %v, uninterrupted %v", restored.Estimate(), uninterrupted.Estimate())
	}
	for _, vc := range uninterrupted.TopK(10) {
		if got := restored.Local(vc.Vertex); got != vc.Count {
			t.Fatalf("vertex %d: restored %v, uninterrupted %v", vc.Vertex, got, vc.Count)
		}
	}
}

func TestFacadeShardedCheckpointBitIdentical(t *testing.T) {
	s := checkpointStream(t, 17, 600)
	cut := len(s) / 2

	build := func() *wsd.ShardedCounter {
		sc, err := wsd.NewShardedCounter(wsd.TrianglePattern, 240, 3, wsd.WithSeed(41))
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	feed := func(sc *wsd.ShardedCounter, evs wsd.Stream) {
		t.Helper()
		const batch = 50
		for lo := 0; lo < len(evs); lo += batch {
			hi := lo + batch
			if hi > len(evs) {
				hi = len(evs)
			}
			if err := sc.SubmitBatch(evs[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
	}
	uninterrupted := build()
	interrupted := build()
	feed(uninterrupted, s[:cut])
	feed(interrupted, s[:cut])

	blob, err := interrupted.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	interrupted.Close()
	restored, err := wsd.RestoreShardedCounter(blob, wsd.WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	feed(uninterrupted, s[cut:])
	feed(restored, s[cut:])
	want := uninterrupted.Close()
	if got := restored.Close(); got != want {
		t.Fatalf("restored ensemble %v, uninterrupted %v", got, want)
	}
}

func TestCheckpointUnsupportedCounter(t *testing.T) {
	if _, err := wsd.Checkpoint(wsd.NewExactCounter(wsd.TrianglePattern)); err == nil {
		t.Fatal("exact counter checkpoint should fail")
	}
	if _, err := wsd.RestoreCounter([]byte(`garbage`)); err == nil {
		t.Fatal("garbage restore should fail")
	}
	if _, err := wsd.RestoreShardedCounter([]byte(`garbage`)); err == nil {
		t.Fatal("garbage sharded restore should fail")
	}
	if _, err := wsd.RestoreLocalCounter([]byte(`garbage`)); err == nil {
		t.Fatal("garbage local restore should fail")
	}
}
