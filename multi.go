package wsd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/shard"
	"repro/internal/xrand"
)

// MultiCounter counts several subgraph patterns over one shared stream: a
// single reservoir-maintained edge sample feeds one estimator per pattern, so
// serving P patterns costs one ingest — not P ingests of the same stream into
// P independent counters. The clique patterns additionally share their
// common-neighborhood enumeration per event.
//
// The first pattern is the primary one: the sampling weights are tuned for it
// (the WSD-H heuristic and the MDP state are computed from its completions),
// while every pattern's estimate remains unbiased. Put the pattern you care
// most about first.
//
// A MultiCounter is not safe for concurrent use; wrap it in a Processor, or
// build a sharded deployment with NewShardedMultiCounter.
type MultiCounter struct {
	inner *core.MultiCounter
}

// NewMultiCounter returns a multi-pattern WSD counter over the given patterns
// (primary first) with shared reservoir capacity m. The options are those of
// NewCounter; without options it is WSD-H with the heuristic computed on the
// primary pattern.
func NewMultiCounter(patterns []Pattern, m int, opts ...Option) (*MultiCounter, error) {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	w, err := resolveWeight(&o)
	if err != nil {
		return nil, err
	}
	ew, err := partitionWeight(&o)
	if err != nil {
		return nil, err
	}
	if o.window != 0 || o.halflife != 0 {
		// The shared sample serves every pattern, but expiry and decay would
		// have to re-tune the primary-pattern weights per mode; refuse until
		// the temporal modes learn multi-pattern semantics.
		return nil, fmt.Errorf("wsd: multi-pattern counters do not support WithWindow/WithDecay")
	}
	inner, err := core.NewMulti(core.MultiConfig{
		M:            m,
		Patterns:     patterns,
		Weight:       w,
		Rng:          xrand.New(o.seed),
		SkipTemporal: skipTemporal(&o),
		Policy:       policyAnnotation(&o),
		EventWeight:  ew,
	})
	if err != nil {
		return nil, err
	}
	return &MultiCounter{inner: inner}, nil
}

// Process consumes one stream event, updating every pattern's estimate.
func (c *MultiCounter) Process(ev Event) { c.inner.Process(ev) }

// ProcessBatch consumes a slice of events in order (the batched fast path).
func (c *MultiCounter) ProcessBatch(evs []Event) { c.inner.ProcessBatch(evs) }

// Patterns returns the counted patterns in estimator order, primary first.
func (c *MultiCounter) Patterns() []Pattern { return c.inner.Patterns() }

// Estimate returns the current unbiased estimate for pattern p. It fails if p
// is not one of the counter's patterns.
func (c *MultiCounter) Estimate(p Pattern) (float64, error) {
	est, ok := c.inner.EstimateOf(p)
	if !ok {
		return 0, fmt.Errorf("wsd: counter does not count %s (patterns: %v)", p, c.inner.Patterns())
	}
	return est, nil
}

// Estimates returns every pattern's estimate in Patterns order.
func (c *MultiCounter) Estimates() []float64 { return c.inner.Estimates() }

// SampleSize returns the current number of sampled edges (shared by all
// patterns).
func (c *MultiCounter) SampleSize() int { return c.inner.SampleSize() }

// Name identifies the algorithm for reports.
func (c *MultiCounter) Name() string { return c.inner.Name() }

// Checkpoint serializes the counter's complete state — sample, thresholds,
// every pattern's estimate, and RNG state — for RestoreMultiCounter.
func (c *MultiCounter) Checkpoint() ([]byte, error) { return c.inner.Checkpoint() }

// Core returns the underlying multi-pattern counter for use with the
// ingestion layers: NewProcessor(mc.Core(), ...) publishes all P estimates
// (read them with Processor.EstimateAt in Patterns order). The caller must
// not drive Core and the wrapper concurrently.
func (c *MultiCounter) Core() *core.MultiCounter { return c.inner }

// RestoreMultiCounter revives a multi-pattern counter from a Checkpoint blob.
// As with RestoreCounter, heuristic weight options must match the original
// construction, while a learned policy is revived from the blob itself when
// no explicit weight option is given; the patterns, budget, estimates, and
// RNG state come from the blob, and the restored counter continues
// bit-identically on every pattern.
func RestoreMultiCounter(data []byte, opts ...Option) (*MultiCounter, error) {
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	ew, err := partitionWeight(&o)
	if err != nil {
		return nil, err
	}
	if o.window != 0 || o.halflife != 0 {
		return nil, fmt.Errorf("wsd: multi-pattern counters do not support WithWindow/WithDecay")
	}
	snap, err := core.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	w, skip, params, err := restoreWeight(&o, snap.Policy)
	if err != nil {
		return nil, err
	}
	inner, err := core.RestoreMulti(snap, core.MultiConfig{
		Weight: w, Rng: xrand.New(o.seed), SkipTemporal: skip, Policy: params, EventWeight: ew,
	})
	if err != nil {
		return nil, err
	}
	return &MultiCounter{inner: inner}, nil
}

// NewShardedMultiCounter returns an ensemble of shards independently seeded
// multi-pattern counters, all fed every event: the multi-pattern analogue of
// NewShardedCounter, and the counter behind a multi-pattern serving
// deployment. Read the per-pattern combined estimates with
// ShardedCounter.EstimateAt (indexes follow the patterns argument) or
// EstimateVector.
//
// Budget semantics and options match NewShardedCounter, with the split-budget
// floor checked against the largest pattern.
func NewShardedMultiCounter(patterns []Pattern, m, shards int, opts ...Option) (*ShardedCounter, error) {
	if shards < 1 {
		return nil, fmt.Errorf("wsd: shards=%d, need at least 1", shards)
	}
	o := options{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	w, err := resolveWeight(&o)
	if err != nil {
		return nil, err
	}
	ew, err := partitionWeight(&o)
	if err != nil {
		return nil, err
	}
	if o.window != 0 || o.halflife != 0 {
		return nil, fmt.Errorf("wsd: multi-pattern counters do not support WithWindow/WithDecay")
	}
	budgets := shard.SplitBudget(m, shards)
	counters := make([]shard.Counter, shards)
	for i := range counters {
		budget := m
		if !o.fullBudget {
			budget = budgets[i]
			for _, p := range patterns {
				if budget < p.Size() {
					return nil, fmt.Errorf("wsd: split budget m/shards=%d/%d is below pattern size |H|=%d for %s; use fewer shards, a larger m, or WithFullBudgetShards", m, shards, p.Size(), p)
				}
			}
		}
		wi := w
		if o.policy != nil {
			// As in NewShardedCounter: policy closures carry per-call scratch
			// state; give each shard worker its own.
			wi = o.policy.Func()
		}
		c, err := core.NewMulti(core.MultiConfig{
			M:            budget,
			Patterns:     patterns,
			Weight:       wi,
			Rng:          xrand.NewSequence(o.seed, int64(i)),
			SkipTemporal: skipTemporal(&o),
			Policy:       policyAnnotation(&o),
			EventWeight:  ew,
		})
		if err != nil {
			return nil, err
		}
		counters[i] = c
	}
	return shard.New(counters, shardOptions(&o)...)
}

// restoreShardCounter rebuilds one shard counter from its decoded snapshot,
// dispatching on the snapshot's shape: multi-pattern snapshots revive
// multi-pattern counters, so RestoreShardedCounter and the serving /restore
// path work unchanged for both deployment kinds. Weight precedence follows
// restoreWeight, called per shard so policy closures — explicit or
// snapshot-embedded — are private to each shard worker goroutine.
func restoreShardCounter(snap *core.Snapshot, o *options, i int) (shard.Counter, error) {
	wi, skip, params, err := restoreWeight(o, snap.Policy)
	if err != nil {
		return nil, err
	}
	ew, err := partitionWeight(o)
	if err != nil {
		return nil, err
	}
	rng := xrand.NewSequence(o.seed, int64(i))
	if snap.Multi() {
		if o.window != 0 || o.halflife != 0 {
			return nil, fmt.Errorf("wsd: multi-pattern counters do not support WithWindow/WithDecay")
		}
		return core.RestoreMulti(snap, core.MultiConfig{Weight: wi, Rng: rng, SkipTemporal: skip, Policy: params, EventWeight: ew})
	}
	spec, err := resolveTemporal(o)
	if err != nil {
		return nil, err
	}
	return core.Restore(snap, core.Config{Weight: wi, Rng: rng, SkipTemporal: skip, Policy: params, EventWeight: ew, Temporal: spec})
}

// MultiPatterns is a convenience constructor for the patterns argument:
// MultiPatterns(wsd.TrianglePattern, wsd.WedgePattern).
func MultiPatterns(primary Pattern, rest ...Pattern) []Pattern {
	return append([]pattern.Kind{primary}, rest...)
}
