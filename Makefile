GO ?= go

.PHONY: build test vet fmt check race bench bench-tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet build test

# Concurrency suites under the race detector.
race:
	$(GO) test -race ./internal/pipeline/ ./internal/shard/ .

# Ingestion throughput: single-goroutine pipeline vs sharded ensemble.
bench:
	$(GO) test -run xxx -bench 'PipelineSingle|Sharded' -benchtime 3x .

# Every paper table/figure at the quick profile (slow).
bench-tables:
	$(GO) test -run xxx -bench . -benchtime 1x .
