GO ?= go

.PHONY: build test vet fmt check race docs-check cluster-smoke wal-smoke partition-smoke enum-smoke policy-smoke window-smoke bench bench-tables bench-suite bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet build test

# Everything under the race detector (CI runs this; the concurrency-heavy
# packages are pipeline, shard, and serve).
race:
	$(GO) test -race ./...

# The documentation gate: formatting, vet, the godoc lint (undocumented
# facade exports, packages without doc comments), the relative-link check
# over README/ARCHITECTURE/docs, and the cmd/* flag-coverage check against
# docs/operations.md. CI runs this on every push.
docs-check: fmt vet
	$(GO) run ./cmd/docslint -root .

# The cluster layer end to end under the race detector: coordinator vs
# equal-budget in-process ensemble, snapshot->restore, degraded reads.
cluster-smoke:
	$(GO) test -race -run 'Cluster|Coordinator|Degraded' ./internal/cluster/ ./internal/serve/
	$(GO) test -race ./internal/combine/

# The durability layer under the race detector: the write-ahead log's unit,
# property, and alloc guards, plus the fault-injection suite (worker killed
# mid-stream and restarted empty must rejoin bit-identically via log replay;
# coordinator crash over a torn frame must recover), then a short fuzz pass
# over segment recovery.
wal-smoke:
	$(GO) test -race ./internal/wal/
	$(GO) test -race -run 'WAL|CatchUp|Torn|Retention|Lagging|LogMode|RestoreSeeds' ./internal/cluster/ ./internal/serve/
	$(GO) test -run xxx -fuzz FuzzWALSegmentDecode -fuzztime 30s ./internal/wal/

# Partitioned ingest and replay idempotence under the race detector: routed
# partitions vs bit-identical in-process references, per-partition log replay
# and snapshot restore, the ack-ambiguity fault injections (duplicated
# delivery, apply-then-lost response), stamped-ingest dedup on the worker,
# and the ownership/Beta unit suite plus the sum combiner.
partition-smoke:
	$(GO) test -race -run 'Partition|SumCombine|AckAmbiguity|Idempotent|Retention|FlagConflict' ./internal/cluster/ ./internal/serve/ ./cmd/wsdserve/
	$(GO) test -race ./internal/partition/ ./internal/combine/

# The enumeration layer under the race detector: the differential
# property/fuzz suite (the mark-array/merge clique intersection must emit
# the identical instance multiset as the naive probe-based reference across
# all five kinds, plain and Live views, random histories), the reservoir
# intersection regression tests, a short fuzz pass, then the
# dense-community core cell end to end with -race on — the workload whose
# throughput the intersection layer owns.
enum-smoke:
	$(GO) test -race -run 'Differential|PairAmong|Common|AdjacentIn' ./internal/pattern/ ./internal/reservoir/
	$(GO) test -run xxx -fuzz FuzzDifferentialEnumeration -fuzztime 20s ./internal/pattern/
	$(GO) run -race ./cmd/wsdbench -exp suite -only core/dense -trials 1

# The policy lifecycle under the race detector: artifact encode/decode and
# the trained-bytes golden, the hot-swap path (concurrent ingest/swap/read
# storm, swap->snapshot->restore->resume bit-identity at the serve and
# cluster layers, partial-swap fault injections and heal-by-restore), shadow
# evaluation, the learned-weight alloc guards, and the WSD-L statistical
# acceptance harness; then a short fuzz pass over the artifact decoder.
policy-smoke:
	$(GO) test -race ./internal/policy/ ./internal/nn/
	$(GO) test -race -run 'Policy|Shadow|WSDL' ./internal/serve/ ./internal/cluster/ ./internal/core/ .
	$(GO) test -run xxx -fuzz FuzzPolicyArtifactDecode -fuzztime 30s ./internal/policy/

# Temporal estimation under the race detector: the window/ring and exact
# oracle unit suites, the core window/decay tests (snapshot v5 resume
# bit-identity, v4 compatibility, temporal validation), the serving layer's
# temporal contract (mode-asserting /estimate queries, unknown-param 400s,
# restore refusal, mixed-fleet detection), the facade degenerate bit-identity
# and windowed-vs-oracle acceptance cells, a short fuzz pass over windowed
# snapshot decoding, then a 10-second sustained-load soak of a windowed
# 3-worker fleet that must finish error-free under a generous p99 bound.
window-smoke:
	$(GO) test -race ./internal/window/ ./internal/exact/
	$(GO) test -race -run 'Window|Decay|Temporal|EstimateUnknownParam' ./internal/core/ ./internal/serve/ ./internal/cluster/ .
	$(GO) test -run xxx -fuzz FuzzWindowedSnapshotDecode -fuzztime 30s .
	$(GO) run ./cmd/wsdload -fleet 3 -window 6000 -rate 20000 -duration 10s -max-p99 250

# Ingestion throughput: single-goroutine pipeline vs sharded ensemble.
bench:
	$(GO) test -run xxx -bench 'PipelineSingle|Sharded' -benchtime 3x .

# Binary vs text decode throughput on a 1M-event stream (the binary codec's
# acceptance benchmark: binary must decode at >= 2x the text rate).
bench-codec:
	$(GO) test -run xxx -bench Decode -benchtime 3x ./internal/stream/

# Every paper table/figure at the quick profile (slow).
bench-tables:
	$(GO) test -run xxx -bench . -benchtime 1x .

# The ingest regression suite: record a machine-readable perf report.
bench-suite:
	$(GO) run ./cmd/wsdbench -exp suite -json > BENCH_$$(date +%F).json
	@echo "wrote BENCH_$$(date +%F).json"

# Gate the current tree against the committed baseline (exit 1 on >10%
# regression; allocs/event is machine-independent, events/s is not — loosen
# -tolerance when comparing across machines).
bench-compare:
	$(GO) run ./cmd/wsdbench -exp suite -json > /tmp/bench_current.json
	$(GO) run ./cmd/wsdbench -compare BENCH_baseline.json /tmp/bench_current.json
