package wsd_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	wsd "repro"

	"repro/internal/exact"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/stream"
)

// TestAllAlgorithmsEndToEnd runs every algorithm over the same fully dynamic
// stream with a generous budget and checks the estimates land near the exact
// count — the cross-module integration path a user hits first.
func TestAllAlgorithmsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rng := rand.New(rand.NewSource(9))
	edges := gen.HolmeKim(1200, 5, 0.8, rng)
	s := stream.LightDeletion(edges, 0.2, rng)
	ex := exact.New(pattern.Triangle)
	for _, ev := range s {
		ex.Apply(ev)
	}
	truth := float64(ex.Count(pattern.Triangle))
	if truth <= 0 {
		t.Fatal("test stream has no triangles")
	}
	m := len(edges) / 4
	for _, algo := range experiment.FullyDynamicAlgos() {
		if algo == experiment.AlgoWSDL {
			continue // exercised in TestLearnedPolicyEndToEnd with a real policy
		}
		// Average a few trials: single runs of the sparser samplers are noisy.
		const trials = 5
		var sum float64
		for trial := 0; trial < trials; trial++ {
			c, err := experiment.NewCounter(experiment.RunConfig{
				Pattern: pattern.Triangle, Algo: algo, M: m,
			}, rand.New(rand.NewSource(int64(trial)+3)))
			if err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
			for _, ev := range s {
				c.Process(ev)
			}
			sum += c.Estimate()
		}
		mean := sum / trials
		if rel := math.Abs(mean-truth) / truth; rel > 0.5 {
			t.Errorf("%v: mean estimate %.0f vs truth %.0f (rel %.2f)", algo, mean, truth, rel)
		}
	}
}

// TestLearnedPolicyEndToEnd trains a small policy and verifies the deployed
// WSD-L counter is at least in the same accuracy class as WSD-H on the
// training distribution.
func TestLearnedPolicyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	rng := rand.New(rand.NewSource(11))
	edges := gen.ForestFire(1200, 0.5, rng)
	train := stream.LightDeletion(edges, 0.2, rng)
	policy, err := wsd.TrainPolicy(wsd.TrianglePattern, 400, 200, []wsd.Stream{train}, 5)
	if err != nil {
		t.Fatal(err)
	}

	testEdges := gen.ForestFire(2500, 0.5, rand.New(rand.NewSource(12)))
	s := stream.LightDeletion(testEdges, 0.2, rand.New(rand.NewSource(13)))
	ex := exact.New(pattern.Triangle)
	for _, ev := range s {
		ex.Apply(ev)
	}
	truth := float64(ex.Count(pattern.Triangle))

	relErr := func(mk func(seed int64) (wsd.Counter, error)) float64 {
		const trials = 6
		var sum float64
		for trial := 0; trial < trials; trial++ {
			c, err := mk(int64(trial) + 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range s {
				c.Process(ev)
			}
			sum += math.Abs(c.Estimate()-truth) / truth
		}
		return sum / trials
	}
	m := len(testEdges) / 10
	learned := relErr(func(seed int64) (wsd.Counter, error) {
		return wsd.NewTriangleCounter(m, wsd.WithSeed(seed), wsd.WithPolicy(policy))
	})
	heuristic := relErr(func(seed int64) (wsd.Counter, error) {
		return wsd.NewTriangleCounter(m, wsd.WithSeed(seed))
	})
	t.Logf("WSD-L %.3f vs WSD-H %.3f", learned, heuristic)
	// WSD-L should not be drastically worse than WSD-H; the paper's claim is
	// that it is better, but at this tiny training budget we assert sanity.
	if learned > 3*heuristic+0.05 {
		t.Errorf("learned policy much worse than heuristic: %.3f vs %.3f", learned, heuristic)
	}
}

// TestHostileWeightFunction injects NaN/Inf/negative weights and checks the
// counter degrades gracefully (sanitization) instead of corrupting estimates.
func TestHostileWeightFunction(t *testing.T) {
	hostile := func(s wsd.State) float64 {
		switch s.Now % 4 {
		case 0:
			return math.NaN()
		case 1:
			return math.Inf(1)
		case 2:
			return -5
		}
		return 0
	}
	c, err := wsd.NewTriangleCounter(100, wsd.WithWeightFunc(hostile), wsd.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	edges := gen.BarabasiAlbert(300, 3, rng)
	for _, e := range edges {
		c.Process(wsd.Event{Op: stream.Insert, Edge: e})
	}
	if math.IsNaN(c.Estimate()) || math.IsInf(c.Estimate(), 0) {
		t.Fatalf("estimate corrupted by hostile weights: %v", c.Estimate())
	}
}

// TestStreamFileRoundTripThroughCounters exercises the file-based workflow
// (wsdgen | wsdcount equivalent): serialize a stream, re-read it, and verify
// the replay produces identical estimates.
func TestStreamFileRoundTripThroughCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	edges := gen.CopyingModel(600, 4, 0.7, rng)
	s := stream.LightDeletion(edges, 0.25, rng)

	var buf bytes.Buffer
	if err := stream.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	replayed, err := stream.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	run := func(events stream.Stream) float64 {
		c, err := wsd.NewTriangleCounter(200, wsd.WithSeed(6))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			c.Process(ev)
		}
		return c.Estimate()
	}
	if a, b := run(s), run(replayed); a != b {
		t.Fatalf("replayed stream diverges: %v vs %v", a, b)
	}
}

// TestInfeasibleStreamIsHarmless feeds deliberately infeasible event
// sequences to every algorithm: estimates must stay finite and no panic may
// escape.
func TestInfeasibleStreamIsHarmless(t *testing.T) {
	var s stream.Stream
	e1, e2 := wsd.NewEdge(1, 2), wsd.NewEdge(3, 4)
	s = append(s,
		wsd.Event{Op: stream.Delete, Edge: e1}, // delete before insert
		wsd.Event{Op: stream.Insert, Edge: e1},
		wsd.Event{Op: stream.Insert, Edge: e1},                // duplicate
		wsd.Event{Op: stream.Insert, Edge: wsd.NewEdge(5, 5)}, // loop
		wsd.Event{Op: stream.Insert, Edge: e2},
		wsd.Event{Op: stream.Delete, Edge: e2},
		wsd.Event{Op: stream.Delete, Edge: e2}, // double delete
	)
	rng := rand.New(rand.NewSource(5))
	for _, algo := range append(experiment.FullyDynamicAlgos(), experiment.AlgoGPS) {
		cfg := experiment.RunConfig{Pattern: pattern.Triangle, Algo: algo, M: 50}
		if algo == experiment.AlgoWSDL {
			cfg.WeightOverride = wsd.UniformWeight()
		}
		c, err := experiment.NewCounter(cfg, rng)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for _, ev := range s {
			c.Process(ev)
		}
		if math.IsNaN(c.Estimate()) || math.IsInf(c.Estimate(), 0) {
			t.Errorf("%v: estimate corrupted: %v", algo, c.Estimate())
		}
	}
}
