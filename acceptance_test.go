package wsd_test

import (
	"math"
	"math/rand"
	"testing"

	wsd "repro"

	"repro/internal/exact"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/pattern"
	"repro/internal/rl"
	"repro/internal/stream"
)

// Statistical acceptance harness: every estimator the facade ships is run
// against the exact oracle across all three served patterns, both deletion
// scenarios, and 20 independent sampler seeds, and its mean relative error
// must stay inside a pinned bound. The streams and seeds are fixed, so the
// observed errors are deterministic; the bounds carry ~2x headroom over the
// measured values and exist to catch estimator regressions (a broken
// inclusion probability, a bias introduced by a refactor), not to re-verify
// the paper's exact numbers.
//
// Measured means at the time the bounds were pinned (seed protocol below):
// see the t.Logf output of each subtest.

const acceptanceSeeds = 20

// acceptanceStream fixes one stream per (pattern, scenario) cell, dense
// enough that even 4-cliques have a three-digit exact count.
func acceptanceStream(t *testing.T, scenario string) stream.Stream {
	t.Helper()
	genRng := rand.New(rand.NewSource(7))
	edges := gen.PlantedPartition(12, 14, 0.55, 0.02, genRng)
	switch scenario {
	case "massive":
		return stream.MassiveDeletionEvents(edges, 2, 0.3, 0.3, genRng)
	case "light":
		return stream.LightDeletion(edges, 0.25, genRng)
	}
	t.Fatalf("unknown scenario %q", scenario)
	return nil
}

func exactFinal(s stream.Stream, k pattern.Kind) float64 {
	ex := exact.New(k)
	for _, ev := range s {
		ex.Apply(ev)
	}
	return float64(ex.Count(k))
}

func TestAcceptanceEstimatorsVsOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical harness skipped in -short mode")
	}
	type cell struct {
		pattern  pattern.Kind
		scenario string
		algo     experiment.Algo
		m        int
		maxMRE   float64
	}
	// Bounds are ~2x the means measured when the harness was pinned (listed
	// in each subtest's log line); the streams and seeds are fixed, so runs
	// are deterministic and a breach means an estimator regressed.
	cells := []cell{
		{pattern.Wedge, "massive", experiment.AlgoWSDH, 220, 0.18},
		{pattern.Wedge, "light", experiment.AlgoWSDH, 220, 0.18},
		{pattern.Triangle, "massive", experiment.AlgoWSDH, 220, 0.35},
		{pattern.Triangle, "light", experiment.AlgoWSDH, 220, 0.35},
		{pattern.FourClique, "massive", experiment.AlgoWSDH, 450, 0.50},
		{pattern.FourClique, "light", experiment.AlgoWSDH, 450, 0.75},
		{pattern.Wedge, "massive", experiment.AlgoGPSA, 220, 0.20},
		{pattern.Wedge, "light", experiment.AlgoGPSA, 220, 0.20},
		{pattern.Triangle, "massive", experiment.AlgoGPSA, 220, 0.45},
		{pattern.Triangle, "light", experiment.AlgoGPSA, 220, 0.40},
		{pattern.FourClique, "massive", experiment.AlgoGPSA, 450, 0.90},
		{pattern.FourClique, "light", experiment.AlgoGPSA, 450, 0.85},
	}
	for _, c := range cells {
		c := c
		t.Run(c.algo.String()+"/"+c.pattern.String()+"/"+c.scenario, func(t *testing.T) {
			s := acceptanceStream(t, c.scenario)
			truth := exactFinal(s, c.pattern)
			if truth < 50 {
				t.Fatalf("degenerate test stream: exact %s count %v", c.pattern, truth)
			}
			sum := 0.0
			for seed := 0; seed < acceptanceSeeds; seed++ {
				rng := rand.New(rand.NewSource(int64(9000 + seed*37)))
				counter, err := experiment.NewCounter(experiment.RunConfig{
					Pattern: c.pattern, Algo: c.algo, M: c.m,
				}, rng)
				if err != nil {
					t.Fatal(err)
				}
				for _, ev := range s {
					counter.Process(ev)
				}
				sum += math.Abs(counter.Estimate()-truth) / truth
			}
			mre := sum / acceptanceSeeds
			t.Logf("%s %s %s: exact %.0f, mean relative error over %d seeds: %.4f (bound %.2f)",
				c.algo, c.pattern, c.scenario, truth, acceptanceSeeds, mre, c.maxMRE)
			if mre > c.maxMRE {
				t.Errorf("mean relative error %.4f exceeds bound %.2f", mre, c.maxMRE)
			}
		})
	}
}

// TestAcceptanceWSDLVsOracle runs the learned estimator — WSD with the DDPG-
// trained weight policy, the paper's headline configuration — through the
// statistical harness: one cheaply-but-deterministically trained policy per
// pattern (fixed training graph, fixed seeds, small budget: the harness
// verifies the learned-policy plumbing end to end, not training quality),
// shared across both deletion scenarios and all sampler seeds, with its MRE
// vs the exact oracle pinned like every other estimator's. The bounds carry
// the same ~2x headroom over the measured means (logged per subtest); a
// breach means the policy evaluation path — state extraction, the linear
// model, the weighted sampler under a non-heuristic weight — regressed.
func TestAcceptanceWSDLVsOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical harness skipped in -short mode")
	}
	policies := make(map[pattern.Kind]*rl.Policy)
	trainFor := func(t *testing.T, k pattern.Kind) *rl.Policy {
		if p, ok := policies[k]; ok {
			return p
		}
		// The cheap deterministic training budget: a fixed scale-free graph
		// under light deletion, few iterations, small batch. Deliberately not
		// the paper's protocol — the full-budget training quality is scored by
		// wsdbench -exp policy; here the policy only has to be a real trained
		// artifact with a fixed identity.
		rng := rand.New(rand.NewSource(11))
		edges := gen.HolmeKim(300, 4, 0.7, rng)
		streams := []stream.Stream{stream.LightDeletion(edges, 0.2, rng)}
		pol, _, err := rl.Train(rl.TrainConfig{
			Pattern:    k,
			M:          150,
			Streams:    streams,
			Iterations: 30,
			Seed:       5,
			DDPG:       rl.Config{BatchSize: 32},
		})
		if err != nil {
			t.Fatal(err)
		}
		policies[k] = pol
		return pol
	}
	type cell struct {
		pattern  pattern.Kind
		scenario string
		m        int
		maxMRE   float64
	}
	cells := []cell{
		{pattern.Wedge, "massive", 220, 0.06},
		{pattern.Wedge, "light", 220, 0.06},
		{pattern.Triangle, "massive", 220, 0.27},
		{pattern.Triangle, "light", 220, 0.28},
		{pattern.FourClique, "massive", 450, 0.55},
		{pattern.FourClique, "light", 450, 0.62},
	}
	for _, c := range cells {
		c := c
		t.Run(c.pattern.String()+"/"+c.scenario, func(t *testing.T) {
			pol := trainFor(t, c.pattern)
			s := acceptanceStream(t, c.scenario)
			truth := exactFinal(s, c.pattern)
			if truth < 50 {
				t.Fatalf("degenerate test stream: exact %s count %v", c.pattern, truth)
			}
			sum := 0.0
			for seed := 0; seed < acceptanceSeeds; seed++ {
				rng := rand.New(rand.NewSource(int64(9000 + seed*37)))
				counter, err := experiment.NewCounter(experiment.RunConfig{
					Pattern: c.pattern, Algo: experiment.AlgoWSDL, M: c.m, Policy: pol,
				}, rng)
				if err != nil {
					t.Fatal(err)
				}
				for _, ev := range s {
					counter.Process(ev)
				}
				sum += math.Abs(counter.Estimate()-truth) / truth
			}
			mre := sum / acceptanceSeeds
			t.Logf("wsd-l %s %s: exact %.0f, mean relative error over %d seeds: %.4f (bound %.2f)",
				c.pattern, c.scenario, truth, acceptanceSeeds, mre, c.maxMRE)
			if mre > c.maxMRE {
				t.Errorf("mean relative error %.4f exceeds bound %.2f", mre, c.maxMRE)
			}
		})
	}
}

// TestAcceptancePartitionedSumVsOracle runs the partitioned-ingest estimator
// — the composition a partitioned coordinator serves — through the same
// statistical harness: each edge is routed to the partitions owning its
// endpoints, each partition runs an ownership-weighted WSD counter over its
// substream, and the fleet estimate is the visibility-corrected sum. The
// bounds carry the same ~2x headroom over the measured means (logged per
// subtest) and catch regressions in the routing, the ownership weighting, or
// the Beta correction.
func TestAcceptancePartitionedSumVsOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical harness skipped in -short mode")
	}
	const parts = 3
	type cell struct {
		pattern  pattern.Kind
		scenario string
		m        int // per-partition reservoir budget
		maxMRE   float64
	}
	cells := []cell{
		{pattern.Wedge, "massive", 220, 0.08},
		{pattern.Wedge, "light", 220, 0.08},
		{pattern.Triangle, "massive", 220, 0.12},
		{pattern.Triangle, "light", 220, 0.20},
		{pattern.FourClique, "massive", 450, 0.60},
		{pattern.FourClique, "light", 450, 0.55},
	}
	for _, c := range cells {
		c := c
		t.Run(c.pattern.String()+"/"+c.scenario, func(t *testing.T) {
			s := acceptanceStream(t, c.scenario)
			truth := exactFinal(s, c.pattern)
			if truth < 50 {
				t.Fatalf("degenerate test stream: exact %s count %v", c.pattern, truth)
			}
			sum := 0.0
			for seed := 0; seed < acceptanceSeeds; seed++ {
				counters := make([]wsd.Counter, parts)
				for i := range counters {
					counter, err := wsd.NewCounter(c.pattern, c.m,
						wsd.WithSeed(int64(9000+seed*37+i)), wsd.WithPartition(i, parts))
					if err != nil {
						t.Fatal(err)
					}
					counters[i] = counter
				}
				for _, ev := range s {
					a, b := partition.Owners(ev.Edge, parts)
					counters[a].Process(ev)
					if b != a {
						counters[b].Process(ev)
					}
				}
				est := 0.0
				for _, counter := range counters {
					est += counter.Estimate()
				}
				est /= partition.Beta(c.pattern, parts)
				sum += math.Abs(est-truth) / truth
			}
			mre := sum / acceptanceSeeds
			t.Logf("partitioned-sum %s %s: exact %.0f, mean relative error over %d seeds: %.4f (bound %.2f)",
				c.pattern, c.scenario, truth, acceptanceSeeds, mre, c.maxMRE)
			if mre > c.maxMRE {
				t.Errorf("mean relative error %.4f exceeds bound %.2f", mre, c.maxMRE)
			}
		})
	}
}

// TestAcceptanceUnbiasedOnInsertOnly pins the cheapest invariant: with the
// reservoir large enough to hold the whole graph, WSD is exact on every
// pattern, so any nonzero error here is a logic bug rather than variance.
func TestAcceptanceUnbiasedOnInsertOnly(t *testing.T) {
	genRng := rand.New(rand.NewSource(3))
	edges := gen.PlantedPartition(6, 10, 0.6, 0.05, genRng)
	s := stream.InsertOnly(edges)
	for _, k := range []pattern.Kind{pattern.Wedge, pattern.Triangle, pattern.FourClique} {
		counter, err := experiment.NewCounter(experiment.RunConfig{
			Pattern: k, Algo: experiment.AlgoWSDH, M: len(edges) + 1,
		}, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range s {
			counter.Process(ev)
		}
		if got, want := counter.Estimate(), exactFinal(s, k); got != want {
			t.Errorf("%s: over-provisioned WSD estimate %v, exact %v", k, got, want)
		}
	}
}
