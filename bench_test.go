// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its artifact with
// the Quick profile and logs the rendered table, so
//
//	go test -bench=Table3 -benchtime=1x
//
// prints the reproduction of Table III. cmd/wsdbench runs the same
// experiments with configurable profiles (including the paper-scale -full).
package wsd_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	wsd "repro"

	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/stream"
)

// tabler lifts any experiment result for uniform logging.
type tabler interface{ GetTable() *experiment.Table }

func benchArtifact[T tabler](b *testing.B, run func(experiment.Profile) (T, error)) {
	b.Helper()
	prof := experiment.Quick()
	var last T
	for i := 0; i < b.N; i++ {
		r, err := run(prof)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.Log("\n" + last.GetTable().String())
}

func BenchmarkTable2WedgesMassive(b *testing.B) { benchArtifact(b, experiment.Table2) }

func BenchmarkTable3TrianglesMassive(b *testing.B) { benchArtifact(b, experiment.Table3) }

func BenchmarkTable4TrainingMassive(b *testing.B) { benchArtifact(b, experiment.Table4) }

func BenchmarkTable5Transfer(b *testing.B) { benchArtifact(b, experiment.Table5) }

func BenchmarkTable6InsertOnly(b *testing.B) { benchArtifact(b, experiment.Table6) }

func BenchmarkTable7FourCliquesMassive(b *testing.B) { benchArtifact(b, experiment.Table7) }

func BenchmarkTable8WedgesLight(b *testing.B) { benchArtifact(b, experiment.Table8) }

func BenchmarkTable9TrianglesLight(b *testing.B) { benchArtifact(b, experiment.Table9) }

func BenchmarkTable10FourCliquesLight(b *testing.B) { benchArtifact(b, experiment.Table10) }

func BenchmarkTable11TrainingLight(b *testing.B) { benchArtifact(b, experiment.Table11) }

func BenchmarkTable12TransferLight(b *testing.B) { benchArtifact(b, experiment.Table12) }

func BenchmarkTable13Ablation(b *testing.B) { benchArtifact(b, experiment.Table13) }

func BenchmarkFig1ScalabilityMassive(b *testing.B) { benchArtifact(b, experiment.Fig1) }

func BenchmarkFig2aOrdering(b *testing.B) { benchArtifact(b, experiment.Fig2a) }

func BenchmarkFig2bReservoirSweep(b *testing.B) { benchArtifact(b, experiment.Fig2b) }

func BenchmarkFig2cTrainingSize(b *testing.B) { benchArtifact(b, experiment.Fig2c) }

func BenchmarkFig2dWeightRelationship(b *testing.B) { benchArtifact(b, experiment.Fig2d) }

func BenchmarkFig3ScalabilityLight(b *testing.B) { benchArtifact(b, experiment.Fig3) }

func BenchmarkFig4aOrderingLight(b *testing.B) { benchArtifact(b, experiment.Fig4a) }

func BenchmarkFig4bReservoirSweepLight(b *testing.B) { benchArtifact(b, experiment.Fig4b) }

func BenchmarkFig4cTrainingSizeLight(b *testing.B) { benchArtifact(b, experiment.Fig4c) }

func BenchmarkFig4dWeightRelationshipLight(b *testing.B) { benchArtifact(b, experiment.Fig4d) }

func BenchmarkFig5DeletionIntensity(b *testing.B) {
	prof := experiment.Quick()
	var last *experiment.DeletionIntensityResult
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig5(prof)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.Log("\n" + last.Massive.Table.String() + "\n" + last.Light.Table.String())
}

// Ablation benches for the design choices DESIGN.md calls out beyond the
// paper's own Table XIII.

// Ingestion throughput: single-goroutine pipeline.Processor (per-event
// Submit) versus the sharded ensemble (batched broadcast, split budget).
// 4-cliques make the per-event enumeration cost superlinear in the reservoir
// size, which is the regime sharding is built for: K reservoirs of m/K edges
// do less total completion-search work than one of m, on top of the batched
// ingestion amortizing the per-event channel and publish overhead.

const (
	throughputM     = 9216
	throughputBatch = 512
)

var throughputStreamOnce = sync.OnceValue(func() stream.Stream {
	rng := rand.New(rand.NewSource(11))
	edges := gen.PlantedPartition(12, 50, 0.9, 0.002, rng)
	return stream.LightDeletion(edges, 0.1, rng)
})

func BenchmarkPipelineSingle(b *testing.B) {
	s := throughputStreamOnce()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := wsd.NewCounter(wsd.FourCliquePattern, throughputM, wsd.WithSeed(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		p := wsd.NewProcessor(c, 1024)
		for _, ev := range s {
			if err := p.Submit(ev); err != nil {
				b.Fatal(err)
			}
		}
		p.Close()
	}
	b.ReportMetric(float64(len(s))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func benchmarkSharded(b *testing.B, shards int) {
	s := throughputStreamOnce()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := wsd.NewShardedCounter(wsd.FourCliquePattern, throughputM, shards,
			wsd.WithSeed(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		for lo := 0; lo < len(s); lo += throughputBatch {
			hi := lo + throughputBatch
			if hi > len(s) {
				hi = len(s)
			}
			if err := e.SubmitBatch(s[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
		e.Close()
	}
	b.ReportMetric(float64(len(s))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkSharded(b *testing.B) {
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { benchmarkSharded(b, shards) })
	}
}

// BenchmarkThroughputTable renders the same comparison as a wsdbench table
// (events/s, speedup, ARE side by side).
func BenchmarkThroughputTable(b *testing.B) { benchArtifact(b, experiment.Throughput) }

func BenchmarkAblationWeightFamilies(b *testing.B) { benchArtifact(b, experiment.WeightFamilies) }

func BenchmarkAblationWRSAlpha(b *testing.B) { benchArtifact(b, experiment.WRSAlphaSweep) }

func BenchmarkAblationDDPG(b *testing.B) { benchArtifact(b, experiment.DDPGAblation) }
