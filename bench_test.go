// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its artifact with
// the Quick profile and logs the rendered table, so
//
//	go test -bench=Table3 -benchtime=1x
//
// prints the reproduction of Table III. cmd/wsdbench runs the same
// experiments with configurable profiles (including the paper-scale -full).
package wsd_test

import (
	"testing"

	"repro/internal/experiment"
)

// tabler lifts any experiment result for uniform logging.
type tabler interface{ GetTable() *experiment.Table }

func benchArtifact[T tabler](b *testing.B, run func(experiment.Profile) (T, error)) {
	b.Helper()
	prof := experiment.Quick()
	var last T
	for i := 0; i < b.N; i++ {
		r, err := run(prof)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.Log("\n" + last.GetTable().String())
}

func BenchmarkTable2WedgesMassive(b *testing.B) { benchArtifact(b, experiment.Table2) }

func BenchmarkTable3TrianglesMassive(b *testing.B) { benchArtifact(b, experiment.Table3) }

func BenchmarkTable4TrainingMassive(b *testing.B) { benchArtifact(b, experiment.Table4) }

func BenchmarkTable5Transfer(b *testing.B) { benchArtifact(b, experiment.Table5) }

func BenchmarkTable6InsertOnly(b *testing.B) { benchArtifact(b, experiment.Table6) }

func BenchmarkTable7FourCliquesMassive(b *testing.B) { benchArtifact(b, experiment.Table7) }

func BenchmarkTable8WedgesLight(b *testing.B) { benchArtifact(b, experiment.Table8) }

func BenchmarkTable9TrianglesLight(b *testing.B) { benchArtifact(b, experiment.Table9) }

func BenchmarkTable10FourCliquesLight(b *testing.B) { benchArtifact(b, experiment.Table10) }

func BenchmarkTable11TrainingLight(b *testing.B) { benchArtifact(b, experiment.Table11) }

func BenchmarkTable12TransferLight(b *testing.B) { benchArtifact(b, experiment.Table12) }

func BenchmarkTable13Ablation(b *testing.B) { benchArtifact(b, experiment.Table13) }

func BenchmarkFig1ScalabilityMassive(b *testing.B) { benchArtifact(b, experiment.Fig1) }

func BenchmarkFig2aOrdering(b *testing.B) { benchArtifact(b, experiment.Fig2a) }

func BenchmarkFig2bReservoirSweep(b *testing.B) { benchArtifact(b, experiment.Fig2b) }

func BenchmarkFig2cTrainingSize(b *testing.B) { benchArtifact(b, experiment.Fig2c) }

func BenchmarkFig2dWeightRelationship(b *testing.B) { benchArtifact(b, experiment.Fig2d) }

func BenchmarkFig3ScalabilityLight(b *testing.B) { benchArtifact(b, experiment.Fig3) }

func BenchmarkFig4aOrderingLight(b *testing.B) { benchArtifact(b, experiment.Fig4a) }

func BenchmarkFig4bReservoirSweepLight(b *testing.B) { benchArtifact(b, experiment.Fig4b) }

func BenchmarkFig4cTrainingSizeLight(b *testing.B) { benchArtifact(b, experiment.Fig4c) }

func BenchmarkFig4dWeightRelationshipLight(b *testing.B) { benchArtifact(b, experiment.Fig4d) }

func BenchmarkFig5DeletionIntensity(b *testing.B) {
	prof := experiment.Quick()
	var last *experiment.DeletionIntensityResult
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig5(prof)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.Log("\n" + last.Massive.Table.String() + "\n" + last.Light.Table.String())
}

// Ablation benches for the design choices DESIGN.md calls out beyond the
// paper's own Table XIII.

func BenchmarkAblationWeightFamilies(b *testing.B) { benchArtifact(b, experiment.WeightFamilies) }

func BenchmarkAblationWRSAlpha(b *testing.B) { benchArtifact(b, experiment.WRSAlphaSweep) }

func BenchmarkAblationDDPG(b *testing.B) { benchArtifact(b, experiment.DDPGAblation) }
