// Local ranking: estimate per-vertex triangle participation on a fully
// dynamic stream and rank vertices by their triangle-to-degree ratio — the
// spam signal from the paper's introduction (spammers have few links but
// extremely well-connected ones, so their ratios are outliers).
//
// The stream is ingested through the concurrent pipeline, the way a live
// deployment would feed connection events from multiple shards.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	wsd "repro"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	organic := gen.HolmeKim(3000, 5, 0.7, rng)

	// A small ring of colluding accounts: very few distinct contacts, almost
	// all of them interconnected.
	var ringEdges []graph.Edge
	const ringBase = graph.VertexID(900000)
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			if rng.Float64() < 0.9 {
				ringEdges = append(ringEdges, graph.NewEdge(ringBase+graph.VertexID(i), ringBase+graph.VertexID(j)))
			}
		}
	}
	mixed := append(append([]graph.Edge{}, organic[:len(organic)/2]...), ringEdges...)
	mixed = append(mixed, organic[len(organic)/2:]...)
	events := stream.LightDeletion(mixed, 0.1, rng)

	counter, err := wsd.NewLocalCounter(wsd.TrianglePattern, 6000, wsd.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	proc := wsd.NewProcessor(counter, 256)

	// Track degrees on the side (cheap: one int per vertex).
	deg := map[graph.VertexID]int{}
	for _, ev := range events {
		if err := proc.Submit(ev); err != nil {
			log.Fatal(err)
		}
		d := 1
		if ev.Op == stream.Delete {
			d = -1
		}
		deg[ev.Edge.U] += d
		deg[ev.Edge.V] += d
	}
	proc.Close()

	// Rank by estimated local clustering coefficient tri(v)/C(deg(v), 2)
	// among vertices with a meaningful degree: colluders have near-complete
	// neighborhoods, organic hubs do not.
	type ranked struct {
		v     graph.VertexID
		ratio float64
	}
	var rows []ranked
	for _, vc := range counter.TopK(counter.Vertices()) {
		if d := deg[vc.Vertex]; d >= 15 {
			pairs := float64(d) * float64(d-1) / 2
			rows = append(rows, ranked{v: vc.Vertex, ratio: vc.Count / pairs})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio > rows[j].ratio })

	fmt.Println("top suspects by estimated local clustering coefficient (degree >= 15):")
	ringHits := 0
	for i, r := range rows[:min(15, len(rows))] {
		tag := ""
		if r.v >= ringBase {
			tag = "  <-- planted colluder"
			ringHits++
		}
		fmt.Printf("%2d. vertex %7d  clustering %5.2f%s\n", i+1, r.v, r.ratio, tag)
	}
	fmt.Printf("\n%d of the top 15 are planted colluders (40 planted among %d vertices)\n",
		ringHits, len(deg))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
