// Checkpoint/resume: snapshot a long-running WSD counter mid-stream,
// serialize it, and resume counting in a "new process" — the operational
// feature a production deployment needs to survive restarts without
// re-reading the (unreplayable, single-pass) stream.
//
// The snapshot captures the reservoir, the tau thresholds, AND the RNG state,
// so the resumed counter is bit-identical to one that never stopped: the
// program verifies this by running an uninterrupted twin alongside.
package main

import (
	"fmt"
	"log"
	"math/rand"

	wsd "repro"

	"repro/internal/gen"
	"repro/internal/stream"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	edges := gen.ForestFire(4000, 0.5, rng)
	events := stream.LightDeletion(edges, 0.2, rng)
	half := len(events) / 2

	newCounter := func() wsd.Counter {
		c, err := wsd.NewTriangleCounter(2000, wsd.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// Phase 1: a counter processes the first half of the stream; an
	// uninterrupted twin will run the whole stream for comparison.
	c1 := newCounter()
	twin := newCounter()
	for _, ev := range events[:half] {
		c1.Process(ev)
		twin.Process(ev)
	}
	fmt.Printf("phase 1: %d events processed, estimate %.0f\n", half, c1.Estimate())

	// Checkpoint: serialize the full sampler state to bytes (in production,
	// to disk or an object store).
	blob, err := wsd.Checkpoint(c1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes\n", len(blob))

	// Phase 2 ("after the restart"): restore and resume. Only the weight
	// function is re-supplied — it is code, not state; the RNG continues
	// from the checkpointed state.
	c2, err := wsd.RestoreCounter(blob)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range events[half:] {
		c2.Process(ev)
		twin.Process(ev)
	}

	// Reference: exact count of the full stream.
	truth := wsd.NewExactCounter(wsd.TrianglePattern)
	for _, ev := range events {
		truth.Process(ev)
	}
	fmt.Printf("phase 2: resumed estimate %.0f, uninterrupted twin %.0f, exact %.0f\n",
		c2.Estimate(), twin.Estimate(), truth.Estimate())
	fmt.Printf("bit-identical resume: %v\n", c2.Estimate() == twin.Estimate())
}
