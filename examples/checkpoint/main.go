// Checkpoint/resume: snapshot a long-running WSD counter mid-stream,
// serialize it, and resume counting in a "new process" — the operational
// feature a production deployment needs to survive restarts without
// re-reading the (unreplayable, single-pass) stream.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/stream"
	"repro/internal/weights"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	edges := gen.ForestFire(4000, 0.5, rng)
	events := stream.LightDeletion(edges, 0.2, rng)
	half := len(events) / 2

	// Phase 1: a counter processes the first half of the stream.
	c1, err := core.New(core.Config{
		M: 2000, Pattern: pattern.Triangle,
		Weight: weights.GPSDefault(), Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range events[:half] {
		c1.Process(ev)
	}
	fmt.Printf("phase 1: %d events processed, estimate %.0f, %d edges sampled\n",
		half, c1.Estimate(), c1.SampleSize())

	// Checkpoint: serialize the full sampler state to bytes (in production,
	// to disk or an object store).
	blob, err := c1.Snapshot().Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes\n", len(blob))

	// Phase 2 ("after the restart"): decode and resume. The weight function
	// and a fresh random source are re-supplied — they are code, not state.
	snap, err := core.DecodeSnapshot(blob)
	if err != nil {
		log.Fatal(err)
	}
	c2, err := core.Restore(snap, core.Config{
		Weight: weights.GPSDefault(), Rng: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range events[half:] {
		c2.Process(ev)
	}

	// Reference: exact count of the full stream.
	truth := exact.CountStatic(events.FinalGraph(), pattern.Triangle)
	fmt.Printf("phase 2: resumed and finished; estimate %.0f, exact %d\n",
		c2.Estimate(), truth)
}
