// Quickstart: estimate the triangle count of a fully dynamic graph stream
// with WSD and compare against the exact count.
package main

import (
	"fmt"
	"log"
	"math/rand"

	wsd "repro"

	"repro/internal/gen"
	"repro/internal/stream"
)

func main() {
	// A synthetic social-style graph of 3,000 users whose edges arrive as a
	// stream; 20% of connections are later removed at random positions
	// (the paper's light deletion scenario).
	rng := rand.New(rand.NewSource(7))
	edges := gen.HolmeKim(3000, 5, 0.8, rng)
	events := stream.LightDeletion(edges, 0.2, rng)

	// A WSD triangle counter with a reservoir of 1,500 edges (~10% of the
	// stream) using the paper's heuristic weight function.
	counter, err := wsd.NewTriangleCounter(1500, wsd.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	// The exact counter replays the same stream as ground truth; on real
	// deployments it would be far too expensive — that is the point of WSD.
	truth := wsd.NewExactCounter(wsd.TrianglePattern)

	for i, ev := range events {
		counter.Process(ev)
		truth.Process(ev)
		if (i+1)%5000 == 0 {
			fmt.Printf("after %5d events: estimate %9.0f  exact %7.0f\n",
				i+1, counter.Estimate(), truth.Estimate())
		}
	}
	est, ex := counter.Estimate(), truth.Estimate()
	fmt.Printf("\nfinal: estimate %.0f, exact %.0f, relative error %.2f%%\n",
		est, ex, 100*abs(est-ex)/ex)
	fmt.Printf("(the counter stored at most 1500 of %d edges)\n", len(edges))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
