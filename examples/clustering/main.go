// Clustering coefficient: track the global clustering coefficient (also
// called transitivity ratio) of a fully dynamic graph in real time by running
// two WSD counters — triangles and wedges — over the same stream.
//
// The paper's introduction notes that clustering coefficient and transitivity
// ratio are both defined on top of the triangle count; this example shows how
// the library composes two estimators to maintain the ratio
// C = 3*triangles/wedges on a stream with deletions, and compares against the
// exact ratio.
package main

import (
	"fmt"
	"log"
	"math/rand"

	wsd "repro"

	"repro/internal/gen"
	"repro/internal/stream"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	// A community-structured network (high clustering) that loses 30% of its
	// edges over time.
	edges := gen.PlantedPartition(40, 40, 0.3, 0.002, rng)
	events := stream.LightDeletion(edges, 0.3, rng)

	const budget = 2000 // per counter
	triangles, err := wsd.NewTriangleCounter(budget, wsd.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	wedges, err := wsd.NewWedgeCounter(budget, wsd.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	exTri := wsd.NewExactCounter(wsd.TrianglePattern)
	exWedge := wsd.NewExactCounter(wsd.WedgePattern)

	fmt.Println("events    C(estimated)  C(exact)")
	for i, ev := range events {
		triangles.Process(ev)
		wedges.Process(ev)
		exTri.Process(ev)
		exWedge.Process(ev)
		if (i+1)%4000 == 0 || i == len(events)-1 {
			fmt.Printf("%7d   %11.4f  %8.4f\n", i+1,
				coeff(triangles.Estimate(), wedges.Estimate()),
				coeff(exTri.Estimate(), exWedge.Estimate()))
		}
	}
	fmt.Printf("\n(two reservoirs of %d edges each, stream of %d events)\n", budget, len(events))
}

// coeff returns the global clustering coefficient 3T/W, guarding the empty
// graph.
func coeff(tri, wedge float64) float64 {
	if wedge <= 0 {
		return 0
	}
	return 3 * tri / wedge
}
