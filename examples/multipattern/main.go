// Multipattern: answer three pattern queries — wedges, triangles, and
// 4-cliques — from one ingested stream with a single multi-pattern counter,
// and verify each estimate against the exact count. The pre-multi
// alternative (three independent counters) would buffer and sample the same
// stream three times; the MultiCounter pays one sampling decision per event
// and shares the clique patterns' enumeration.
package main

import (
	"fmt"
	"log"
	"math/rand"

	wsd "repro"

	"repro/internal/gen"
	"repro/internal/stream"
)

func main() {
	// A community-structured graph (8 planted communities) so all three
	// patterns have plenty of instances, streamed with 20% light deletions.
	rng := rand.New(rand.NewSource(7))
	edges := gen.PlantedPartition(8, 40, 0.4, 0.005, rng)
	events := stream.LightDeletion(edges, 0.2, rng)

	// One counter, three patterns, one shared 1,200-edge sample (under half
	// the live graph, so the counter genuinely estimates). The first pattern
	// is the primary one: sampling weights are tuned for triangles here, but
	// every estimate is unbiased.
	patterns := []wsd.Pattern{wsd.TrianglePattern, wsd.WedgePattern, wsd.FourCliquePattern}
	counter, err := wsd.NewMultiCounter(patterns, 1200, wsd.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// Exact counters replay the same stream as ground truth.
	exact := make(map[wsd.Pattern]*wsd.ExactCounter, len(patterns))
	for _, p := range patterns {
		exact[p] = wsd.NewExactCounter(p)
	}

	for _, ev := range events {
		counter.Process(ev)
		for _, p := range patterns {
			exact[p].Process(ev)
		}
	}

	fmt.Printf("%d events ingested once, %d edges sampled\n", len(events), counter.SampleSize())
	for _, p := range patterns {
		est, err := counter.Estimate(p)
		if err != nil {
			log.Fatal(err)
		}
		truth := exact[p].Estimate()
		fmt.Printf("%-10s estimate %12.0f   exact %12.0f   rel.err %5.1f%%\n",
			p, est, truth, 100*relErr(est, truth))
	}
}

func relErr(est, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	d := (est - truth) / truth
	if d < 0 {
		return -d
	}
	return d
}
