// Anomaly detection: spot a burst of suspiciously dense connectivity (a spam
// farm / fake-engagement ring) in a dynamic network by monitoring the global
// triangle count estimated by WSD.
//
// The paper's introduction motivates exactly this use: spammers form few but
// remarkably well-connected links, so triangle statistics separate them from
// organic activity. Here a clique of 40 sybil accounts wires itself up
// mid-stream; a windowed z-score over WSD's triangle estimate flags the burst
// while storing only ~8% of the edges.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	wsd "repro"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Organic traffic: a growing social network.
	organic := gen.HolmeKim(4000, 5, 0.7, rng)
	events := stream.InsertOnly(organic)

	// Inject the sybil ring at 60% of the stream: 40 accounts, near-clique.
	var ring stream.Stream
	base := graph.VertexID(1 << 20)
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			if rng.Float64() < 0.9 {
				ring = append(ring, wsd.Insert(base+graph.VertexID(i), base+graph.VertexID(j)))
			}
		}
	}
	at := len(events) * 6 / 10
	full := append(append(append(stream.Stream{}, events[:at]...), ring...), events[at:]...)

	counter, err := wsd.NewTriangleCounter(1500, wsd.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}

	// Windowed burst detector over the estimate's per-window increments.
	const window = 500
	var prev float64
	var increments []float64
	alerts := 0
	for i, ev := range full {
		counter.Process(ev)
		if (i+1)%window != 0 {
			continue
		}
		inc := counter.Estimate() - prev
		prev = counter.Estimate()
		if len(increments) >= 8 {
			mean, std := stats(increments)
			z := (inc - mean) / math.Max(std, 1)
			flag := ""
			if z > 6 {
				flag = "  <-- ALERT: dense subgraph burst"
				alerts++
			}
			if flag != "" || (i+1)%(window*8) == 0 {
				fmt.Printf("events %6d: +%8.0f triangles/window (z=%5.1f)%s\n", i+1, inc, z, flag)
			}
		}
		increments = append(increments, inc)
		if len(increments) > 40 {
			increments = increments[1:]
		}
	}
	fmt.Printf("\nsybil ring injected after event %d; windows flagged: %d\n", at, alerts)
	if alerts == 0 {
		fmt.Println("no alert raised — tune the window or threshold")
	}
}

func stats(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
