// Social feed burst: a celebrity joins the platform and followers connect in
// a breadth-first burst (the paper's RBFS ordering motivation). The example
// trains a small WSD-L policy on one burst-shaped stream, then compares
// WSD-L, WSD-H, and the uniform baseline ThinkD on a second, larger one.
//
// It demonstrates the full learn-then-deploy workflow of the paper: train the
// weight function on a stream with the same arrival dynamics, extract the
// policy, plug it into WSD.
package main

import (
	"fmt"
	"log"
	"math/rand"

	wsd "repro"

	"repro/internal/exact"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/stream"
)

func burstStream(n int, seed int64) wsd.Stream {
	rng := rand.New(rand.NewSource(seed))
	edges := gen.HolmeKim(n, 5, 0.8, rng)
	// RBFS ordering: connections spread outward from random seeds, like
	// follower cascades after a celebrity joins.
	ordered := stream.RBFSOrder(edges, rng)
	return stream.LightDeletion(ordered, 0.15, rng)
}

func main() {
	train := burstStream(1500, 1)
	test := burstStream(6000, 2)

	fmt.Println("training WSD-L policy on a follower-cascade stream ...")
	policy, err := wsd.TrainPolicy(wsd.TrianglePattern, 600, 300, []wsd.Stream{train}, 7)
	if err != nil {
		log.Fatal(err)
	}

	truth := exactOf(test)
	fmt.Printf("test stream: %d events, exact triangle count %.0f\n\n", len(test), truth)

	const m = 2500
	fmt.Println("algorithm   estimate    error")
	for _, cand := range []struct {
		name string
		make func() (wsd.Counter, error)
	}{
		{"WSD-L", func() (wsd.Counter, error) {
			return wsd.NewTriangleCounter(m, wsd.WithSeed(3), wsd.WithPolicy(policy))
		}},
		{"WSD-H", func() (wsd.Counter, error) {
			return wsd.NewTriangleCounter(m, wsd.WithSeed(3))
		}},
		{"ThinkD", func() (wsd.Counter, error) {
			return experiment.NewCounter(experiment.RunConfig{
				Pattern: pattern.Triangle, Algo: experiment.AlgoThinkD, M: m,
			}, rand.New(rand.NewSource(3)))
		}},
	} {
		// Average a few sampling runs, as the paper does.
		const trials = 10
		var sumErr, lastEst float64
		for trial := 0; trial < trials; trial++ {
			c, err := cand.make()
			if err != nil {
				log.Fatal(err)
			}
			for _, ev := range test {
				c.Process(ev)
			}
			lastEst = c.Estimate()
			sumErr += abs(c.Estimate()-truth) / truth
		}
		fmt.Printf("%-10s %9.0f   %6.2f%%\n", cand.name, lastEst, 100*sumErr/trials)
	}
}

func exactOf(s wsd.Stream) float64 {
	ex := exact.New(pattern.Triangle)
	for _, ev := range s {
		ex.Apply(ev)
	}
	return float64(ex.Count(pattern.Triangle))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
