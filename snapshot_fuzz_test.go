package wsd_test

import (
	"bytes"
	"encoding/json"
	"testing"

	wsd "repro"
)

// shardedSnapshotSeed builds a real sharded-counter snapshot to seed the
// fuzzer with structurally valid input.
func shardedSnapshotSeed(tb testing.TB, shards int) []byte {
	tb.Helper()
	ens, err := wsd.NewShardedCounter(wsd.TrianglePattern, 64, shards, wsd.WithSeed(3))
	if err != nil {
		tb.Fatal(err)
	}
	var evs []wsd.Event
	for i := wsd.VertexID(0); i < 40; i++ {
		evs = append(evs, wsd.Insert(i, i+1), wsd.Insert(i, i+2))
	}
	if err := ens.SubmitBatch(evs); err != nil {
		tb.Fatal(err)
	}
	blob, err := ens.Snapshot()
	if err != nil {
		tb.Fatal(err)
	}
	ens.Close()
	return blob
}

// FuzzShardedSnapshotDecode throws arbitrary bytes at the sharded-snapshot
// surface: InspectShardedSnapshot and RestoreShardedCounter must reject
// malformed frames with an error — never panic — and whatever they accept
// must behave like a live counter. This is the boundary a deployment exposes
// at /restore, so decoder robustness is a security property, not a nicety.
func FuzzShardedSnapshotDecode(f *testing.F) {
	valid := shardedSnapshotSeed(f, 2)
	f.Add(valid)
	f.Add(shardedSnapshotSeed(f, 1))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"shards":[]}`))
	f.Add([]byte(`{"version":99,"shards":["x"]}`))
	f.Add([]byte(`{"version":1,"shards":[{"version":2,"m":-5}]}`))
	f.Add([]byte(`not json at all`))
	f.Add(bytes.Replace(valid, []byte(`"m"`), []byte(`"M"`), 1))
	// A version-1 envelope whose shard payload declares more items than M.
	f.Add([]byte(`{"version":1,"shards":[{"version":2,"m":2,"pattern":1,"items":[` +
		`{"u":1,"v":2,"rank":1},{"u":2,"v":3,"rank":1},{"u":3,"v":4,"rank":1}]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		info, inspectErr := wsd.InspectShardedSnapshot(data)
		ens, restoreErr := wsd.RestoreShardedCounter(data)
		// Inspect accepting what Restore rejects (or vice versa) would let a
		// deployment validate a snapshot it then fails to load.
		if (inspectErr == nil) != (restoreErr == nil) {
			t.Fatalf("inspect err = %v, restore err = %v: validation surfaces disagree", inspectErr, restoreErr)
		}
		if restoreErr != nil {
			return
		}
		if info.Shards != ens.Shards() {
			t.Fatalf("inspect reports %d shards, restored counter has %d", info.Shards, ens.Shards())
		}
		// The restored ensemble must be a working counter: ingest and close
		// without panic, snapshot round-trips through the same decoder.
		if err := ens.SubmitBatch([]wsd.Event{wsd.Insert(100, 101)}); err != nil {
			t.Fatalf("restored counter rejects ingest: %v", err)
		}
		blob, err := ens.Snapshot()
		if err != nil {
			t.Fatalf("restored counter cannot snapshot: %v", err)
		}
		if _, err := wsd.InspectShardedSnapshot(blob); err != nil {
			t.Fatalf("re-snapshot does not decode: %v", err)
		}
		if !json.Valid(blob) {
			t.Fatal("snapshot is not valid JSON")
		}
		ens.Close()
	})
}
