package wsd_test

import (
	"math"
	"math/rand"
	"testing"

	wsd "repro"

	"repro/internal/gen"
	"repro/internal/stream"
)

func TestQuickstartAPI(t *testing.T) {
	c, err := wsd.NewTriangleCounter(100, wsd.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	c.Process(wsd.Insert(1, 2))
	c.Process(wsd.Insert(2, 3))
	c.Process(wsd.Insert(1, 3))
	if got := c.Estimate(); got != 1 {
		t.Fatalf("estimate = %v, want 1", got)
	}
	c.Process(wsd.Delete(1, 3))
	if got := c.Estimate(); got != 0 {
		t.Fatalf("estimate after deletion = %v, want 0", got)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := wsd.NewTriangleCounter(2); err == nil {
		t.Fatal("M below pattern size should error")
	}
	p := &wsd.Policy{W: make([]float64, 6)}
	if _, err := wsd.NewTriangleCounter(100,
		wsd.WithPolicy(p), wsd.WithWeightFunc(wsd.UniformWeight())); err == nil {
		t.Fatal("policy + weight func should be rejected")
	}
	if _, err := wsd.NewTriangleCounter(100, wsd.WithPolicy(p)); err != nil {
		t.Fatalf("policy-only should be fine: %v", err)
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	edges := gen.BarabasiAlbert(500, 3, rng)
	s := stream.InsertOnly(edges)
	run := func(seed int64) float64 {
		c, err := wsd.NewTriangleCounter(200, wsd.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range s {
			c.Process(ev)
		}
		return c.Estimate()
	}
	if run(5) != run(5) {
		t.Fatal("same seed must reproduce the estimate exactly")
	}
	if run(5) == run(6) {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

func TestExactCounterFacade(t *testing.T) {
	ex := wsd.NewExactCounter(wsd.WedgePattern)
	ex.Process(wsd.Insert(1, 2))
	ex.Process(wsd.Insert(2, 3))
	if ex.Estimate() != 1 {
		t.Fatalf("wedges = %v, want 1", ex.Estimate())
	}
	if ex.Name() != "exact" {
		t.Fatal("name")
	}
}

func TestTrainPolicyFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := rand.New(rand.NewSource(2))
	edges := gen.HolmeKim(400, 4, 0.7, rng)
	train := stream.LightDeletion(edges, 0.2, rng)
	p, err := wsd.TrainPolicy(wsd.TrianglePattern, 150, 30, []wsd.Stream{train}, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := wsd.NewTriangleCounter(150, wsd.WithPolicy(p), wsd.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	truth := wsd.NewExactCounter(wsd.TrianglePattern)
	for _, ev := range train {
		c.Process(ev)
		truth.Process(ev)
	}
	if math.IsNaN(c.Estimate()) {
		t.Fatal("estimate corrupted")
	}
	if truth.Estimate() > 0 && math.Abs(c.Estimate()-truth.Estimate())/truth.Estimate() > 2 {
		t.Fatalf("trained-policy counter wildly off: %v vs %v", c.Estimate(), truth.Estimate())
	}
}

func TestLocalCounterFacade(t *testing.T) {
	c, err := wsd.NewLocalCounter(wsd.TrianglePattern, 100, wsd.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]wsd.VertexID{{1, 2}, {2, 3}, {1, 3}} {
		c.Process(wsd.Insert(e[0], e[1]))
	}
	if c.Estimate() != 1 {
		t.Fatalf("global estimate = %v, want 1", c.Estimate())
	}
	for _, v := range []wsd.VertexID{1, 2, 3} {
		if c.Local(v) != 1 {
			t.Fatalf("local(%d) = %v, want 1", v, c.Local(v))
		}
	}
	top := c.TopK(2)
	if len(top) != 2 || top[0].Count != 1 {
		t.Fatalf("TopK = %+v", top)
	}
	// Mutually exclusive options are rejected here too.
	if _, err := wsd.NewLocalCounter(wsd.TrianglePattern, 100,
		wsd.WithPolicy(&wsd.Policy{W: make([]float64, 6)}),
		wsd.WithWeightFunc(wsd.UniformWeight())); err == nil {
		t.Fatal("policy + weight func should be rejected")
	}
}

// TestShardedCounterFacade covers the sharded constructor's validation and,
// under -race, the regression where a trained policy's scratch-carrying
// closure was shared across shard worker goroutines (each shard must get its
// own).
func TestShardedCounterFacade(t *testing.T) {
	if _, err := wsd.NewShardedCounter(wsd.TrianglePattern, 100, 0); err == nil {
		t.Fatal("shards=0 should be rejected")
	}
	if _, err := wsd.NewShardedCounter(wsd.TrianglePattern, 8, 4); err == nil {
		t.Fatal("split budget below pattern size should be rejected")
	}
	if _, err := wsd.NewShardedCounter(wsd.TrianglePattern, 8, 4, wsd.WithFullBudgetShards()); err != nil {
		t.Fatalf("full-budget shards with small m: %v", err)
	}

	rng := rand.New(rand.NewSource(9))
	edges := gen.HolmeKim(600, 4, 0.6, rng)
	s := stream.LightDeletion(edges, 0.2, rng)
	policy := &wsd.Policy{W: []float64{0.1, 0.2, 0.1, 0, 0, 0.3}, B: 1}
	sc, err := wsd.NewShardedCounter(wsd.TrianglePattern, 800, 4,
		wsd.WithSeed(5), wsd.WithPolicy(policy))
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(s); lo += 128 {
		hi := lo + 128
		if hi > len(s) {
			hi = len(s)
		}
		if err := sc.SubmitBatch(s[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	final := sc.Close()
	if math.IsNaN(final) {
		t.Fatal("combined estimate corrupted")
	}
	if sc.Processed() != int64(len(s)) {
		t.Fatalf("processed %d, want %d", sc.Processed(), len(s))
	}
}

func TestProcessorFacade(t *testing.T) {
	c, err := wsd.NewTriangleCounter(100, wsd.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	p := wsd.NewProcessor(c, 16)
	for _, e := range [][2]wsd.VertexID{{1, 2}, {2, 3}, {1, 3}} {
		if err := p.Submit(wsd.Insert(e[0], e[1])); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Close(); got != 1 {
		t.Fatalf("final estimate = %v, want 1", got)
	}
	if p.Processed() != 3 {
		t.Fatalf("processed = %d, want 3", p.Processed())
	}
}
