package wsd_test

import (
	"reflect"
	"testing"

	wsd "repro"
)

var apiPatterns = []wsd.Pattern{wsd.TrianglePattern, wsd.WedgePattern, wsd.FourCliquePattern}

// TestMultiCounterAPI: per-pattern estimates through the facade surface, and
// a clean error for a pattern the counter does not serve.
func TestMultiCounterAPI(t *testing.T) {
	s := checkpointStream(t, 5, 400)
	mc, err := wsd.NewMultiCounter(apiPatterns, 300, wsd.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	mc.ProcessBatch(s)

	if got := mc.Patterns(); !reflect.DeepEqual(got, apiPatterns) {
		t.Fatalf("Patterns() = %v, want %v", got, apiPatterns)
	}
	ests := mc.Estimates()
	for i, p := range apiPatterns {
		est, err := mc.Estimate(p)
		if err != nil {
			t.Fatal(err)
		}
		if est != ests[i] {
			t.Fatalf("%s: Estimate %v, Estimates[%d] %v", p, est, i, ests[i])
		}
		// Each pattern must match a single-pattern counter over the same
		// sample trajectory only for the primary; for the others just assert
		// the estimate is being maintained at all (nonzero on this stream).
		if est == 0 {
			t.Fatalf("%s: estimate is zero after %d events", p, len(s))
		}
	}
	if _, err := mc.Estimate(wsd.Pattern(4)); err == nil { // 5-clique: not served
		t.Fatal("Estimate accepted an unserved pattern")
	}

	// The primary pattern must bit-match a plain counter with the same seed
	// and budget: the multi layer shares the exact sampling trajectory.
	single, err := wsd.NewTriangleCounter(300, wsd.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range s {
		single.Process(ev)
	}
	if primary, _ := mc.Estimate(wsd.TrianglePattern); primary != single.Estimate() {
		t.Fatalf("primary estimate %v, single counter %v", primary, single.Estimate())
	}
}

// TestMultiCounterCheckpointBitIdentical: facade checkpoint/restore of a
// multi-pattern counter resumes bit-identically on every pattern.
func TestMultiCounterCheckpointBitIdentical(t *testing.T) {
	s := checkpointStream(t, 9, 500)
	cut := len(s) / 2

	whole, err := wsd.NewMultiCounter(apiPatterns, 200, wsd.WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	whole.ProcessBatch(s)

	half, err := wsd.NewMultiCounter(apiPatterns, 200, wsd.WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	half.ProcessBatch(s[:cut])
	blob, err := half.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := wsd.RestoreMultiCounter(blob, wsd.WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	restored.ProcessBatch(s[cut:])
	if !reflect.DeepEqual(restored.Estimates(), whole.Estimates()) {
		t.Fatalf("restored estimates %v, uninterrupted %v", restored.Estimates(), whole.Estimates())
	}

	// The generic Checkpoint helper also accepts the wrapper.
	if _, err := wsd.Checkpoint(restored); err != nil {
		t.Fatalf("generic Checkpoint: %v", err)
	}
}

// TestShardedMultiCounter: a multi-pattern ensemble serves per-pattern
// combined estimates, snapshots with pattern metadata, and restores through
// the generic sharded restore path bit-identically.
func TestShardedMultiCounter(t *testing.T) {
	s := checkpointStream(t, 21, 600)
	cut := len(s) / 2
	build := func() *wsd.ShardedCounter {
		e, err := wsd.NewShardedMultiCounter(apiPatterns, 300, 3, wsd.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	whole := build()
	if err := whole.SubmitBatch(s); err != nil {
		t.Fatal(err)
	}
	whole.Close()

	half := build()
	if err := half.SubmitBatch(s[:cut]); err != nil {
		t.Fatal(err)
	}
	blob, err := half.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	half.Close()

	info, err := wsd.InspectShardedSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Pattern != wsd.TrianglePattern || !reflect.DeepEqual(info.Patterns, apiPatterns) {
		t.Fatalf("snapshot info %+v", info)
	}
	if info.Shards != 3 || info.TotalM != 300 {
		t.Fatalf("snapshot info %+v", info)
	}

	restored, err := wsd.RestoreShardedCounter(blob, wsd.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.SubmitBatch(s[cut:]); err != nil {
		t.Fatal(err)
	}
	restored.Close()

	if restored.NumEstimates() != len(apiPatterns) {
		t.Fatalf("NumEstimates = %d, want %d", restored.NumEstimates(), len(apiPatterns))
	}
	if got, want := restored.EstimateVector(), whole.EstimateVector(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored vector %v, uninterrupted %v", got, want)
	}
}

// TestMultiPatternsHelper covers the variadic pattern-list constructor.
func TestMultiPatternsHelper(t *testing.T) {
	got := wsd.MultiPatterns(wsd.TrianglePattern, wsd.WedgePattern)
	if !reflect.DeepEqual(got, []wsd.Pattern{wsd.TrianglePattern, wsd.WedgePattern}) {
		t.Fatalf("MultiPatterns = %v", got)
	}
}
